"""Rollout policy tests (Section 6.2)."""

import random
from collections import Counter

import pytest

from repro.catalog import Index
from repro.config import MCTSConfig, TuningConstraints
from repro.core.rollout import RolloutPolicy


@pytest.fixture
def actions(star_schema):
    fact = star_schema.table("fact")
    return [Index.build(fact, [c]) for c in ("fk1", "fk2", "cat", "val", "flag")]


def make_policy(rollout="myopic", step=0, selection="epsilon_greedy", k=5, priors=None):
    config = MCTSConfig(
        rollout_policy=rollout, myopic_step=step, selection_policy=selection
    )
    return RolloutPolicy(config, TuningConstraints(max_indexes=k), priors)


class TestMyopicRollout:
    def test_step_zero_returns_state(self, actions):
        policy = make_policy(step=0)
        state = frozenset(actions[:2])
        assert policy.rollout(state, actions[2:], random.Random(0)) == state

    def test_fixed_step_adds_exactly_l(self, actions):
        policy = make_policy(step=2)
        result = policy.rollout(frozenset(), actions, random.Random(0))
        assert len(result) == 2

    def test_step_clamped_by_cardinality(self, actions):
        policy = make_policy(step=5, k=3)
        state = frozenset(actions[:2])
        result = policy.rollout(state, actions[2:], random.Random(0))
        assert len(result) <= 3


class TestRandomRollout:
    def test_step_within_remaining_depth(self, actions):
        policy = make_policy(rollout="random", k=4)
        for seed in range(30):
            result = policy.rollout(frozenset(actions[:1]), actions[1:], random.Random(seed))
            assert 1 <= len(result) <= 4

    def test_includes_original_state(self, actions):
        policy = make_policy(rollout="random")
        state = frozenset(actions[:1])
        for seed in range(10):
            result = policy.rollout(state, actions[1:], random.Random(seed))
            assert state <= result

    def test_uct_flavour_uniform(self, actions):
        policy = make_policy(rollout="random", selection="uct")
        seen = Counter()
        for seed in range(200):
            result = policy.rollout(frozenset(), actions, random.Random(seed))
            seen.update(result)
        assert len(seen) == len(actions)


class TestPriorWeighting:
    def test_prior_weighted_sampling_prefers_high_prior(self, actions):
        priors = {actions[0]: 0.9, actions[1]: 0.05}
        config = MCTSConfig(rollout_policy="myopic", myopic_step=1)
        policy = RolloutPolicy(config, TuningConstraints(max_indexes=5), priors)
        counts = Counter()
        for seed in range(400):
            result = policy.rollout(frozenset(), actions, random.Random(seed))
            counts.update(result)
        assert counts[actions[0]] > 300

    def test_zero_priors_fall_back_to_uniform(self, actions):
        config = MCTSConfig(rollout_policy="myopic", myopic_step=1)
        policy = RolloutPolicy(config, TuningConstraints(max_indexes=5), {})
        counts = Counter()
        for seed in range(400):
            counts.update(policy.rollout(frozenset(), actions, random.Random(seed)))
        assert len(counts) == len(actions)


class TestStorageConstraint:
    def test_additions_respect_storage(self, actions):
        budget_bytes = actions[0].estimated_size_bytes + actions[1].estimated_size_bytes
        constraints = TuningConstraints(max_indexes=5, max_storage_bytes=budget_bytes)
        config = MCTSConfig(rollout_policy="random")
        policy = RolloutPolicy(config, constraints, {})
        for seed in range(30):
            result = policy.rollout(frozenset(), actions, random.Random(seed))
            total = sum(ix.estimated_size_bytes for ix in result)
            assert total <= budget_bytes
