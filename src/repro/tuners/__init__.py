"""Budget-aware configuration enumeration algorithms.

* :class:`~repro.tuners.greedy.VanillaGreedyTuner` — Algorithm 1 with FCFS
  budget allocation (Section 4.2.1).
* :class:`~repro.tuners.twophase.TwoPhaseGreedyTuner` — Algorithm 2 with
  FCFS (Section 4.2.2).
* :class:`~repro.tuners.autoadmin.AutoAdminGreedyTuner` — two-phase greedy
  restricted to atomic configurations (Section 4.2.2).
* :class:`~repro.tuners.mcts.MCTSTuner` — the paper's contribution
  (Sections 5-6), a facade over :mod:`repro.core`.
* :class:`~repro.tuners.bandit.DBABanditTuner` — the DBA-bandits baseline
  (Section 7.2.1).
* :class:`~repro.tuners.dqn.NoDBATuner` — the No-DBA deep-Q baseline
  (Section 7.2.2).
* :class:`~repro.tuners.dta.DTATuner` — the DTA anytime-tuner simulation
  (Section 7.3).
* :class:`~repro.tuners.random_search.RandomSearchTuner` — a sanity-check
  control not in the paper.
"""

from repro.tuners.base import Tuner, TuningResult, TuningSession, evaluated_cost
from repro.tuners.greedy import VanillaGreedyTuner, greedy_enumerate
from repro.tuners.twophase import TwoPhaseGreedyTuner
from repro.tuners.autoadmin import AutoAdminGreedyTuner
from repro.tuners.mcts import MCTSTuner
from repro.tuners.bandit import DBABanditTuner
from repro.tuners.dqn import NoDBATuner
from repro.tuners.dta import DTATuner
from repro.tuners.random_search import RandomSearchTuner
from repro.tuners.timebudget import TimeBudgetedTuner

__all__ = [
    "AutoAdminGreedyTuner",
    "DBABanditTuner",
    "DTATuner",
    "MCTSTuner",
    "NoDBATuner",
    "RandomSearchTuner",
    "TimeBudgetedTuner",
    "Tuner",
    "TuningResult",
    "TuningSession",
    "TwoPhaseGreedyTuner",
    "VanillaGreedyTuner",
    "evaluated_cost",
    "greedy_enumerate",
]
