"""The registry REP105 walks; only *registered* classes are checked."""

from backend.bad import BadBackend
from backend.good import FlexBackend, GoodBackend


class UnregisteredDraft:
    """Diverges from the protocol but is not registered — not checked."""

    def whatif_cost(self):
        return 0.0


BACKENDS = {
    "good": GoodBackend,
    "flex": FlexBackend,
    "bad": BadBackend,
}
