"""A fully-connected ReLU network with Adam, trained on per-action targets.

The network maps a state vector to one Q-value per action. Training uses
the DQN loss: mean squared error between ``Q(s)[a]`` and the TD target, with
gradients flowing only through the taken action's output.
"""

from __future__ import annotations

import numpy as np


class MLP:
    """Multi-layer perceptron ``input -> hidden*... -> output`` with ReLU.

    Args:
        input_dim: State vector width.
        hidden_dims: Hidden layer widths (the paper's No-DBA adaptation
            uses three layers of 96).
        output_dim: Number of actions (Q-values).
        rng: Seeded generator for weight initialisation.
        learning_rate: Adam step size.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: tuple[int, ...],
        output_dim: int,
        rng: np.random.Generator,
        learning_rate: float = 1e-3,
    ):
        if input_dim < 1 or output_dim < 1:
            raise ValueError("input_dim and output_dim must be positive")
        dims = [input_dim, *hidden_dims, output_dim]
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:], strict=True):
            scale = np.sqrt(2.0 / fan_in)  # He initialisation for ReLU
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))
        self._lr = learning_rate
        self._adam_t = 0
        self._m = [np.zeros_like(p) for p in (*self._weights, *self._biases)]
        self._v = [np.zeros_like(p) for p in (*self._weights, *self._biases)]

    @property
    def num_layers(self) -> int:
        return len(self._weights)

    # ------------------------------------------------------------------ #

    def forward(self, states: np.ndarray) -> np.ndarray:
        """Q-values for a batch of states, shape ``(batch, output_dim)``."""
        activations = np.atleast_2d(states)
        for layer, (weight, bias) in enumerate(zip(self._weights, self._biases, strict=True)):
            activations = activations @ weight + bias
            if layer < self.num_layers - 1:
                activations = np.maximum(activations, 0.0)
        return activations

    def _forward_cached(self, states: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = np.atleast_2d(states)
        cache = [activations]
        for layer, (weight, bias) in enumerate(zip(self._weights, self._biases, strict=True)):
            activations = activations @ weight + bias
            if layer < self.num_layers - 1:
                activations = np.maximum(activations, 0.0)
            cache.append(activations)
        return activations, cache

    def train_step(
        self, states: np.ndarray, actions: np.ndarray, targets: np.ndarray
    ) -> float:
        """One Adam step on ``(Q(s)[a] − target)²`` averaged over the batch.

        Returns:
            The batch loss before the update.
        """
        states = np.atleast_2d(states)
        batch = states.shape[0]
        output, cache = self._forward_cached(states)

        selected = output[np.arange(batch), actions]
        errors = selected - targets
        loss = float(np.mean(errors**2))

        # Backpropagate through the selected outputs only.
        grad_out = np.zeros_like(output)
        grad_out[np.arange(batch), actions] = 2.0 * errors / batch

        grad_weights: list[np.ndarray] = [np.empty(0)] * self.num_layers
        grad_biases: list[np.ndarray] = [np.empty(0)] * self.num_layers
        upstream = grad_out
        for layer in range(self.num_layers - 1, -1, -1):
            pre_activation_input = cache[layer]
            grad_weights[layer] = pre_activation_input.T @ upstream
            grad_biases[layer] = upstream.sum(axis=0)
            if layer > 0:
                upstream = upstream @ self._weights[layer].T
                upstream = upstream * (cache[layer] > 0.0)

        self._adam_update(grad_weights, grad_biases)
        return loss

    def _adam_update(
        self, grad_weights: list[np.ndarray], grad_biases: list[np.ndarray]
    ) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_t += 1
        params = self._weights + self._biases
        grads = grad_weights + grad_biases
        for i, (param, grad) in enumerate(zip(params, grads, strict=True)):
            self._m[i] = beta1 * self._m[i] + (1 - beta1) * grad
            self._v[i] = beta2 * self._v[i] + (1 - beta2) * grad**2
            m_hat = self._m[i] / (1 - beta1**self._adam_t)
            v_hat = self._v[i] / (1 - beta2**self._adam_t)
            param -= self._lr * m_hat / (np.sqrt(v_hat) + eps)

    # ------------------------------------------------------------------ #

    def get_parameters(self) -> list[np.ndarray]:
        """Copies of all parameters (weights then biases)."""
        return [p.copy() for p in (*self._weights, *self._biases)]

    def set_parameters(self, parameters: list[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_parameters` (target nets)."""
        count = self.num_layers
        if len(parameters) != 2 * count:
            raise ValueError(
                f"expected {2 * count} parameter arrays, got {len(parameters)}"
            )
        for i in range(count):
            self._weights[i][...] = parameters[i]
            self._biases[i][...] = parameters[count + i]
