"""Semantic binding tests, including the paper's Figure 3 example."""

import pytest

from repro.exceptions import UnknownColumnError, UnknownTableError
from repro.workload.analysis import PredicateKind, bind_query
from repro.workload.query import Query


def bind(schema, sql, qid="q"):
    return bind_query(schema, Query(qid=qid, sql=sql).statement, qid)


class TestFigure3Example:
    """The worked example of the paper's Section 2 / Figure 3."""

    def test_q1_binding(self, figure3_schema):
        bound = bind(
            figure3_schema,
            "SELECT a, d FROM R, S WHERE R.b = S.c AND R.a = 5 AND S.d > 200",
            qid="Q1",
        )
        assert bound.tables == {"R", "S"}
        assert bound.num_joins == 1
        join = bound.joins[0]
        assert {join.side("R"), join.side("S")} == {("R", "b"), ("S", "c")}
        r = bound.accesses["R"]
        assert r.equality_columns == {"a"}
        s = bound.accesses["S"]
        assert s.range_columns == {"d"}

    def test_q1_required_columns_include_projection(self, figure3_schema):
        bound = bind(
            figure3_schema,
            "SELECT a, d FROM R, S WHERE R.b = S.c AND R.a = 5 AND S.d > 200",
        )
        assert bound.accesses["R"].required_columns == {"a", "b"}
        assert bound.accesses["S"].required_columns == {"c", "d"}

    def test_q2_binding(self, figure3_schema):
        bound = bind(
            figure3_schema,
            "SELECT a FROM R, S WHERE R.b = S.c AND R.a = 40",
            qid="Q2",
        )
        assert bound.accesses["R"].equality_columns == {"a"}
        assert bound.accesses["S"].required_columns == {"c"}


class TestResolution:
    def test_unqualified_resolution(self, figure3_schema):
        bound = bind(figure3_schema, "SELECT a FROM R WHERE b = 1")
        assert bound.accesses["R"].filters[0].column == "b"

    def test_unknown_table(self, figure3_schema):
        with pytest.raises(UnknownTableError):
            bind(figure3_schema, "SELECT a FROM ZZ")

    def test_unknown_column(self, figure3_schema):
        with pytest.raises(UnknownColumnError):
            bind(figure3_schema, "SELECT zz FROM R")

    def test_unknown_alias(self, figure3_schema):
        with pytest.raises(UnknownTableError):
            bind(figure3_schema, "SELECT x.a FROM R")

    def test_alias_binding(self, figure3_schema):
        bound = bind(figure3_schema, "SELECT r1.a FROM R r1 WHERE r1.a = 1")
        assert "r1" in bound.accesses
        assert bound.accesses["r1"].table == "R"

    def test_self_join_via_aliases(self, figure3_schema):
        bound = bind(
            figure3_schema,
            "SELECT r1.a FROM R r1, R r2 WHERE r1.b = r2.b AND r2.a = 1",
        )
        assert set(bound.accesses) == {"r1", "r2"}
        assert bound.num_joins == 1

    def test_duplicate_binding_rejected(self, figure3_schema):
        with pytest.raises(UnknownTableError, match="twice"):
            bind(figure3_schema, "SELECT a FROM R, R")


class TestPredicateClassification:
    @pytest.mark.parametrize(
        "sql,kind",
        [
            ("SELECT a FROM R WHERE a = 1", PredicateKind.EQUALITY),
            ("SELECT a FROM R WHERE a IN (1, 2)", PredicateKind.EQUALITY),
            ("SELECT a FROM R WHERE a IS NULL", PredicateKind.EQUALITY),
            ("SELECT a FROM R WHERE a > 1", PredicateKind.RANGE),
            ("SELECT a FROM R WHERE a BETWEEN 1 AND 2", PredicateKind.RANGE),
            ("SELECT a FROM R WHERE a <> 1", PredicateKind.RESIDUAL),
            ("SELECT a FROM R WHERE a IS NOT NULL", PredicateKind.RESIDUAL),
        ],
    )
    def test_kinds(self, figure3_schema, sql, kind):
        bound = bind(figure3_schema, sql)
        assert bound.accesses["R"].filters[0].kind is kind

    def test_prefix_like_is_range(self, star_schema):
        bound = bind(star_schema, "SELECT val FROM fact WHERE cat LIKE 'ab%'")
        assert bound.accesses["fact"].filters[0].kind is PredicateKind.RANGE

    def test_wildcard_like_is_residual(self, star_schema):
        bound = bind(star_schema, "SELECT val FROM fact WHERE cat LIKE '%ab'")
        assert bound.accesses["fact"].filters[0].kind is PredicateKind.RESIDUAL


class TestClauses:
    def test_group_by_bound(self, star_schema):
        bound = bind(star_schema, "SELECT cat, COUNT(*) FROM fact GROUP BY cat")
        assert bound.group_by == [("fact", "cat")]

    def test_order_by_bound(self, star_schema):
        bound = bind(star_schema, "SELECT val FROM fact ORDER BY val DESC")
        assert bound.order_by == [("fact", "val", True)]

    def test_select_star_requires_all_columns(self, star_schema):
        bound = bind(star_schema, "SELECT * FROM dim1")
        assert bound.accesses["dim1"].required_columns == {"id", "attr"}
        assert bound.select_star

    def test_aggregate_argument_required(self, star_schema):
        bound = bind(star_schema, "SELECT SUM(val) FROM fact")
        assert "val" in bound.accesses["fact"].required_columns

    def test_count_star_requires_nothing(self, star_schema):
        bound = bind(star_schema, "SELECT COUNT(*) FROM fact")
        assert bound.accesses["fact"].required_columns == set()

    def test_stats_properties(self, star_schema):
        bound = bind(
            star_schema,
            "SELECT fact.val FROM fact, dim1 "
            "WHERE fact.fk1 = dim1.id AND fact.cat = 'x' AND dim1.attr > 3",
        )
        assert bound.num_joins == 1
        assert bound.num_filters == 2
        assert bound.num_scans == 2

    def test_joins_of(self, star_schema):
        bound = bind(
            star_schema,
            "SELECT fact.val FROM fact, dim1, dim2 "
            "WHERE fact.fk1 = dim1.id AND fact.fk2 = dim2.id",
        )
        assert len(bound.joins_of("fact")) == 2
        assert len(bound.joins_of("dim1")) == 1
