"""Index definitions and the index size model.

An :class:`Index` is a *covering* index in the AutoAdmin sense: an ordered
list of key columns plus an optional list of included (payload) columns.
Indexes here are hypothetical — nothing is ever materialised; the size model
estimates what the index *would* occupy, which feeds the storage constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.table import PAGE_BYTES, Table
from repro.exceptions import InvalidIndexError

#: Per-entry overhead in a leaf page (row locator + slot entry).
ENTRY_OVERHEAD_BYTES = 12

#: B-tree fill factor applied to leaf pages.
FILL_FACTOR = 0.75


@dataclass(frozen=True)
class Index:
    """A (hypothetical) covering index.

    Attributes:
        table: Name of the indexed table.
        key_columns: Ordered key columns; the index supports seeks on any
            prefix of this list and provides output ordered by it.
        include_columns: Non-key payload columns stored in the leaves,
            enabling index-only plans for queries they cover.
        estimated_size_bytes: Size estimate used by the storage constraint;
            computed by :func:`index_storage_bytes` when built through
            :meth:`build`.
    """

    table: str
    key_columns: tuple[str, ...]
    include_columns: tuple[str, ...] = ()
    estimated_size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise InvalidIndexError(f"index on {self.table!r} must have key columns")
        seen: set[str] = set()
        for name in (*self.key_columns, *self.include_columns):
            if name in seen:
                raise InvalidIndexError(
                    f"column {name!r} appears twice in index on {self.table!r}"
                )
            seen.add(name)
        # Indexes live in hot sets/dicts throughout enumeration; cache the
        # hash instead of re-hashing four tuples per lookup.
        object.__setattr__(
            self,
            "_cached_hash",
            hash((self.table, self.key_columns, self.include_columns)),
        )

    def __hash__(self) -> int:
        return self._cached_hash  # type: ignore[attr-defined]

    @classmethod
    def build(
        cls,
        table: Table,
        key_columns: list[str] | tuple[str, ...],
        include_columns: list[str] | tuple[str, ...] = (),
    ) -> "Index":
        """Create an index on ``table``, validating columns and sizing it.

        Raises:
            InvalidIndexError: If a named column does not exist on ``table``.
        """
        for name in (*key_columns, *include_columns):
            if not table.has_column(name):
                raise InvalidIndexError(
                    f"table {table.name!r} has no column {name!r} for index"
                )
        index = cls(
            table=table.name,
            key_columns=tuple(key_columns),
            include_columns=tuple(include_columns),
            estimated_size_bytes=index_storage_bytes(
                table, tuple(key_columns), tuple(include_columns)
            ),
        )
        return index

    @property
    def all_columns(self) -> tuple[str, ...]:
        """Key columns followed by include columns."""
        return self.key_columns + self.include_columns

    @property
    def column_set(self) -> frozenset[str]:
        """All columns carried by the index, as a set."""
        return frozenset(self.all_columns)

    def covers(self, required_columns: set[str] | frozenset[str]) -> bool:
        """Return whether the index carries every column in ``required_columns``."""
        return self.column_set.issuperset(required_columns)

    def key_prefix_length(self, equality_columns: set[str]) -> int:
        """Length of the leading key prefix fully bound by equality columns.

        This is what a seek can consume: the optimizer may seek on key
        columns ``key_columns[:p]`` when each of them appears in an equality
        predicate of the query.
        """
        length = 0
        for column in self.key_columns:
            if column in equality_columns:
                length += 1
            else:
                break
        return length

    def display(self) -> str:
        """Human-readable rendering, e.g. ``R(a, b) INCLUDE (d)``."""
        keys = ", ".join(self.key_columns)
        if self.include_columns:
            payload = ", ".join(self.include_columns)
            return f"{self.table}({keys}) INCLUDE ({payload})"
        return f"{self.table}({keys})"


def index_sort_key(index: Index) -> tuple[str, tuple[str, ...], tuple[str, ...]]:
    """Canonical deterministic ordering key for indexes.

    ``Index`` hashes on strings, so set/frozenset iteration order varies
    with ``PYTHONHASHSEED``; any loop whose order can reach costs, budget
    charges, or RNG draws must sort by this key instead (enforced by lint
    rule REP004).
    """
    return (index.table, index.key_columns, index.include_columns)


def index_storage_bytes(
    table: Table,
    key_columns: tuple[str, ...],
    include_columns: tuple[str, ...] = (),
) -> int:
    """Estimate the leaf-level storage of an index over ``table``.

    The estimate is ``rows * entry_width / fill_factor`` rounded up to whole
    pages, where ``entry_width`` is the summed column widths plus a fixed
    per-entry overhead. Internal B-tree levels add roughly 1%.
    """
    entry_width = ENTRY_OVERHEAD_BYTES + sum(
        table.column(name).width for name in (*key_columns, *include_columns)
    )
    leaf_bytes = table.row_count * entry_width / FILL_FACTOR
    total_bytes = leaf_bytes * 1.01
    pages = max(1, -(-int(total_bytes) // PAGE_BYTES))
    return pages * PAGE_BYTES
