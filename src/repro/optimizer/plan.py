"""Plan (EXPLAIN) structures returned by the cost model's explain mode."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AccessPlan:
    """The chosen access path for one table access.

    Attributes:
        binding: Access binding (alias).
        table: Table name.
        method: ``"heap_scan"``, ``"index_seek"``, ``"index_only_seek"``,
            ``"index_only_scan"`` or ``"inl_join_probe"``.
        index: Display string of the index used (``None`` for heap scans).
        rows: Estimated output rows.
        cost: Estimated operator cost.
    """

    binding: str
    table: str
    method: str
    index: str | None
    rows: float
    cost: float


@dataclass(frozen=True)
class JoinPlan:
    """One join step of the left-deep pipeline.

    Attributes:
        method: ``"hash_join"`` or ``"index_nested_loop"``.
        inner: The inner side's access plan.
        rows: Estimated output rows of the join.
        cost: Estimated cost of the join operator (inner access included).
    """

    method: str
    inner: AccessPlan
    rows: float
    cost: float


@dataclass(frozen=True)
class QueryPlan:
    """A full explain output for one what-if costing.

    Attributes:
        qid: Query id.
        first: Access plan opening the pipeline.
        joins: Join steps in execution order.
        sort_cost: Cost of the final sort/group stage (0 when avoided).
        sort_avoided: Whether an index order made the sort unnecessary.
        total_cost: Total estimated cost — what the what-if call returns.
    """

    qid: str
    first: AccessPlan
    joins: tuple[JoinPlan, ...] = ()
    sort_cost: float = 0.0
    sort_avoided: bool = False
    total_cost: float = 0.0

    def render(self) -> str:
        """Readable multi-line EXPLAIN text."""
        lines = [f"Plan for {self.qid} (cost={self.total_cost:.1f})"]
        lines.append(
            f"  {self.first.method} {self.first.table} [{self.first.binding}]"
            + (f" via {self.first.index}" if self.first.index else "")
            + f" rows={self.first.rows:.0f} cost={self.first.cost:.1f}"
        )
        for join in self.joins:
            inner = join.inner
            lines.append(
                f"  {join.method} -> {inner.table} [{inner.binding}]"
                + (f" via {inner.index}" if inner.index else "")
                + f" rows={join.rows:.0f} cost={join.cost:.1f}"
            )
        if self.sort_cost > 0:
            lines.append(f"  sort cost={self.sort_cost:.1f}")
        elif self.sort_avoided:
            lines.append("  sort avoided (index order)")
        return "\n".join(lines)

