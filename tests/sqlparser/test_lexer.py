"""Lexer tests."""

import pytest

from repro.exceptions import SQLSyntaxError
from repro.sqlparser import tokenize
from repro.sqlparser.tokens import Token, TokenType


def kinds(sql):
    return [t.ttype for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].ttype is TokenType.EOF

    def test_whitespace_only_yields_eof(self):
        assert kinds("  \n\t ") == [TokenType.EOF]

    def test_keywords_are_uppercased(self):
        assert values("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        assert values("LineItem customer_ID") == ["LineItem", "customer_ID"]

    def test_identifier_with_underscore_prefix(self):
        tokens = tokenize("_private")
        assert tokens[0].ttype is TokenType.IDENTIFIER
        assert tokens[0].value == "_private"

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].ttype is TokenType.NUMBER
        assert tokens[0].value == "42"

    def test_decimal_literal(self):
        assert values("3.14") == ["3.14"]

    def test_leading_dot_number(self):
        tokens = tokenize(".5")
        assert tokens[0].ttype is TokenType.NUMBER
        assert tokens[0].value == ".5"

    def test_string_literal_unquoted_value(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].ttype is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_punctuation(self):
        expected = [
            TokenType.COMMA,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.STAR,
            TokenType.SEMICOLON,
            TokenType.MINUS,
            TokenType.EOF,
        ]
        assert kinds(",()*;-") == expected

    def test_dot_between_identifiers(self):
        tokens = tokenize("R.a")
        assert [t.ttype for t in tokens[:3]] == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
        ]


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "<>"])
    def test_operator_lexes(self, op):
        tokens = tokenize(f"a {op} 5")
        assert tokens[1].ttype is TokenType.OPERATOR
        assert tokens[1].value == op

    def test_bang_equals_normalised(self):
        tokens = tokenize("a != 5")
        assert tokens[1].value == "<>"


class TestTrivia:
    def test_line_comment_skipped(self):
        assert values("SELECT -- comment here\n a") == ["SELECT", "a"]

    def test_comment_at_end_of_input(self):
        assert kinds("a -- trailing")[-1] is TokenType.EOF

    def test_positions_recorded(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated"):
            tokenize("'never closed")

    def test_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("abc $")
        assert excinfo.value.position == 4


class TestTokenHelpers:
    def test_is_keyword_case_insensitive_arg(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.is_keyword("select")

    def test_identifier_is_not_keyword(self):
        token = Token(TokenType.IDENTIFIER, "SELECT_LIST", 0)
        assert not token.is_keyword("select")
