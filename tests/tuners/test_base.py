"""Tuner base-class and TuningResult tests."""

import pytest

from repro.config import TuningConstraints
from repro.exceptions import TuningError
from repro.tuners import VanillaGreedyTuner
from repro.tuners.base import TuningResult, evaluated_cost
from repro.optimizer.whatif import WhatIfOptimizer


class TestEvaluatedCost:
    def test_counts_while_budget_lasts(self, toy_workload, toy_candidates):
        optimizer = WhatIfOptimizer(toy_workload, budget=1)
        config = frozenset(toy_candidates[:1])
        evaluated_cost(optimizer, toy_workload[0], config)
        assert optimizer.calls_used == 1

    def test_falls_back_to_derived(self, toy_workload, toy_candidates):
        optimizer = WhatIfOptimizer(toy_workload, budget=1)
        config = frozenset(toy_candidates[:1])
        evaluated_cost(optimizer, toy_workload[0], config)
        other = frozenset(toy_candidates[1:2])
        cost = evaluated_cost(optimizer, toy_workload[1], other)
        assert cost == optimizer.empty_cost(toy_workload[1])
        assert optimizer.calls_used == 1


class TestTuneValidation:
    def test_rejects_zero_budget(self, toy_workload):
        with pytest.raises(TuningError):
            VanillaGreedyTuner().tune(toy_workload, budget=0)

    def test_rejects_empty_candidates(self, toy_workload):
        with pytest.raises(TuningError):
            VanillaGreedyTuner().tune(toy_workload, budget=10, candidates=[])

    def test_generates_candidates_when_omitted(self, toy_workload):
        result = VanillaGreedyTuner().tune(toy_workload, budget=50)
        assert result.calls_used <= 50

    def test_unlimited_budget_allowed(self, toy_workload, toy_candidates):
        result = VanillaGreedyTuner().tune(
            toy_workload,
            budget=None,
            candidates=toy_candidates[:8],
            constraints=TuningConstraints(max_indexes=3),
        )
        assert result.budget is None


class TestTuningResult:
    @pytest.fixture
    def result(self, toy_workload, toy_candidates, small_constraints):
        return VanillaGreedyTuner().tune(
            toy_workload,
            budget=200,
            constraints=small_constraints,
            candidates=toy_candidates,
        )

    def test_true_improvement_in_range(self, result):
        assert 0.0 <= result.true_improvement() <= 100.0

    def test_estimated_improvement_from_derived(self, result):
        assert result.estimated_improvement == pytest.approx(
            (1 - result.estimated_cost / result.baseline_cost) * 100
        )

    def test_estimated_never_below_true_for_greedy(self, result):
        # Derived cost upper-bounds true cost, so the estimate is conservative.
        assert result.estimated_improvement <= result.true_improvement() + 1e-6

    def test_improvement_history_evaluates(self, result):
        points = result.improvement_history()
        assert len(points) == len(result.history)
        assert all(0 <= imp <= 100 for _, imp in points)

    def test_result_without_optimizer_raises(self):
        bare = TuningResult(
            tuner="x",
            configuration=frozenset(),
            estimated_cost=1.0,
            baseline_cost=2.0,
            calls_used=0,
            budget=None,
        )
        with pytest.raises(TuningError):
            bare.true_improvement()


class TestCandidateValidation:
    def test_foreign_schema_candidates_rejected(self, toy_workload, figure3_schema):
        from repro.catalog import Index

        foreign = Index.build(figure3_schema.table("R"), ["a"])
        with pytest.raises(TuningError, match="missing from schema"):
            VanillaGreedyTuner().tune(
                toy_workload, budget=10, candidates=[foreign]
            )
