"""Report formatting tests."""

from repro.eval.report import format_grid, format_records, format_series
from repro.eval.runner import RunRecord


def record(tuner="mcts", k=5, budget=100, mean=42.0, std=1.5):
    return RunRecord(
        workload="toy",
        tuner=tuner,
        max_indexes=k,
        budget=budget,
        improvement_mean=mean,
        improvement_std=std,
        calls_used=float(budget),
        seconds=0.1,
    )


class TestFormatRecords:
    def test_contains_all_rows(self):
        text = format_records([record(), record(tuner="dta")])
        assert "mcts" in text
        assert "dta" in text

    def test_numbers_rendered(self):
        assert "42.0" in format_records([record()])


class TestFormatGrid:
    def test_panel_per_k(self):
        records = [record(k=5), record(k=10)]
        text = format_grid(records, "Title")
        assert "K = 5" in text
        assert "K = 10" in text

    def test_std_rendered_for_stochastic(self):
        text = format_grid([record(std=2.0)], "T")
        assert "±" in text

    def test_std_hidden_for_deterministic(self):
        text = format_grid([record(std=0.0)], "T")
        assert "±" not in text

    def test_missing_cells_dashed(self):
        records = [record(budget=100), record(tuner="dta", budget=200)]
        text = format_grid(records, "T")
        assert "--" in text

    def test_minute_labels(self):
        text = format_grid([record(budget=1000)], "T", minute_labels={1000: 20.0})
        assert "1000(20)" in text


class TestFormatSeries:
    def test_rows_per_round(self):
        series = {"a": [(1, 10.0), (2, 20.0)], "b": [(1, 5.0)]}
        text = format_series("Conv", series)
        assert "Conv" in text
        assert "10.0" in text
        assert "20.0" in text

    def test_carried_forward_marker(self):
        series = {"a": [(1, 10.0), (2, 20.0)], "b": [(1, 5.0)]}
        text = format_series("Conv", series)
        assert "*" in text


class TestJSONExport:
    def test_roundtrips_scalars(self):
        import json

        from repro.eval.report import records_to_json

        payload = json.loads(records_to_json([record(), record(tuner="dta")]))
        assert len(payload) == 2
        assert payload[0]["tuner"] == "mcts"
        assert payload[0]["improvement_mean"] == 42.0
        assert set(payload[0]) == {
            "workload",
            "tuner",
            "max_indexes",
            "budget",
            "improvement_mean",
            "improvement_std",
            "calls_used",
            "seconds",
            "cache_hit_rate",
            "normalized_hits",
            "cost_seconds",
            "seeds",
        }

    def test_compact_mode(self):
        from repro.eval.report import records_to_json

        assert "\n" not in records_to_json([record()], indent=None)
