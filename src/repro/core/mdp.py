"""The MDP view of index configuration search (Section 5.1).

* **States** — index configurations: all subsets of the candidate set
  ``I`` (so ``|S| = 2^{|I|}``); a state is represented as a
  ``frozenset[Index]``.
* **Actions** — ``A(s) = I − s``: the indexes that can still be added.
* **Transitions** — deterministic: ``s' = f(s, a) = s ∪ {a}`` with
  probability 1.
* **Rewards / returns** — the expected percentage improvement (Equation 4)
  of configurations containing ``s``, evaluated with derived costs under
  budget constraints. Rewards are kept as fractions in ``[0, 1]`` (the
  paper's UCT discussion assumes this range).

States with ``|s| = K`` — or states whose every remaining action would
violate the storage constraint — are *terminal*: they have no outgoing
transitions.
"""

from __future__ import annotations

from repro.catalog import Index, index_sort_key
from repro.config import TuningConstraints

#: A state of the MDP: an index configuration.
State = frozenset


class IndexTuningMDP:
    """The deterministic MDP over configurations of a fixed candidate set.

    Args:
        candidates: The candidate indexes ``I`` spanning the state space.
        constraints: Cardinality (``K``) and optional storage constraints;
            both restrict the action sets.
    """

    def __init__(self, candidates: list[Index], constraints: TuningConstraints):
        self._candidates = tuple(sorted(candidates, key=index_sort_key))
        self._constraints = constraints

    @property
    def candidates(self) -> tuple[Index, ...]:
        return self._candidates

    @property
    def constraints(self) -> TuningConstraints:
        return self._constraints

    @property
    def initial_state(self) -> frozenset[Index]:
        """The root state: the existing (empty hypothetical) configuration."""
        return frozenset()

    def actions(self, state: frozenset[Index]) -> list[Index]:
        """``A(s)``: addable indexes that keep the state admissible."""
        if len(state) >= self._constraints.max_indexes:
            return []
        return [
            index
            for index in self._candidates
            if index not in state
            and self._constraints.admits(state, extra_bytes=index.estimated_size_bytes)
        ]

    def transition(self, state: frozenset[Index], action: Index) -> frozenset[Index]:
        """``f(s, a) = s ∪ {a}`` — the (only) successor with probability 1."""
        if action in state:
            raise ValueError(f"action {action.display()} already in state")
        return state | {action}

    def is_terminal(self, state: frozenset[Index]) -> bool:
        """Whether ``state`` has no outgoing transitions."""
        return not self.actions(state)

    def max_depth_from(self, state: frozenset[Index]) -> int:
        """``K − d``: how many more indexes may be added below ``state``."""
        return max(0, self._constraints.max_indexes - len(state))
