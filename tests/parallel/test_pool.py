"""Tests for the generic order-preserving process-pool map."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import ParallelExecutionError, ReproError
from repro.parallel.pool import parallel_map


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"boom {value}")


def _pid(_):
    return os.getpid()


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [i * i for i in items]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(_square, [1], jobs=0)

    def test_worker_exception_propagates(self):
        with pytest.raises(ParallelExecutionError, match="boom"):
            parallel_map(_boom, [1, 2], jobs=2)

    def test_serial_exception_names_the_item(self):
        with pytest.raises(ParallelExecutionError, match="boom 1"):
            parallel_map(_boom, [1], jobs=1)

    def test_parallel_actually_forks(self):
        pids = set(parallel_map(_pid, list(range(8)), jobs=2))
        # workers may be reused, but at least one must differ from the parent
        assert pids - {os.getpid()}
