"""Tune your own schema and SQL — the downstream-user path end to end.

Builds a small order-management schema with the fluent builder, writes a
few SQL statements by hand, inspects the hypothetical plans before/after,
and tunes under a tight budget.

Run:
    python examples/custom_workload.py
"""

from repro import (
    ColumnType,
    MCTSTuner,
    Query,
    SchemaBuilder,
    TuningConstraints,
    WhatIfOptimizer,
    Workload,
)


def build_schema():
    return (
        SchemaBuilder("shop")
        .table("customers", rows=200_000)
        .column("customer_id", distinct=200_000)
        .column("region", ColumnType.VARCHAR, distinct=12)
        .column("signup_day", ColumnType.DATE, distinct=2_000, lo=0, hi=2_000)
        .table("orders", rows=5_000_000)
        .column("order_id", distinct=5_000_000)
        .column("customer_id", distinct=200_000)
        .column("status", ColumnType.CHAR, distinct=4)
        .column("total", ColumnType.DECIMAL, distinct=100_000, lo=0, hi=10_000)
        .column("order_day", ColumnType.DATE, distinct=2_000, lo=0, hi=2_000)
        .table("order_items", rows=25_000_000)
        .column("order_id", distinct=5_000_000)
        .column("product_id", distinct=50_000)
        .column("quantity", distinct=20, lo=1, hi=20)
        .column("price", ColumnType.DECIMAL, distinct=30_000, lo=0, hi=2_000)
        .foreign_key("orders", "customer_id", "customers", "customer_id")
        .foreign_key("order_items", "order_id", "orders", "order_id")
        .build()
    )


SQL = {
    "recent_big_orders": """
        SELECT order_id, total FROM orders
        WHERE order_day > 1900 AND total > 5000
    """,
    "region_revenue": """
        SELECT customers.region, SUM(order_items.price)
        FROM customers, orders, order_items
        WHERE orders.customer_id = customers.customer_id
          AND order_items.order_id = orders.order_id
          AND orders.status = 'P'
        GROUP BY customers.region
    """,
    "customer_history": """
        SELECT orders.order_id, orders.total FROM orders, customers
        WHERE orders.customer_id = customers.customer_id
          AND customers.customer_id = 4242
        ORDER BY orders.order_day DESC
    """,
}


def main() -> None:
    schema = build_schema()
    queries = [Query(qid=name, sql=sql.strip()) for name, sql in SQL.items()]
    workload = Workload(name="shop", schema=schema, queries=queries)

    tuner = MCTSTuner(seed=0)
    result = tuner.tune(
        workload, budget=60, constraints=TuningConstraints(max_indexes=4)
    )

    print(f"improvement: {result.true_improvement():.1f}% "
          f"({result.calls_used} what-if calls)\n")
    print("recommended indexes:")
    for index in sorted(result.configuration, key=lambda ix: ix.display()):
        print(f"  {index.display()}")

    # Show before/after plans for one query via the what-if interface.
    optimizer = WhatIfOptimizer(workload)
    target = workload.query("customer_history")
    print("\n--- plan without indexes ---")
    print(optimizer.explain(target, frozenset()).render())
    print("\n--- plan with recommended configuration ---")
    print(optimizer.explain(target, result.configuration).render())


if __name__ == "__main__":
    main()
