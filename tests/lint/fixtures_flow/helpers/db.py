"""Fake DBMS driver (REP103 connection fixture support)."""


class Connection:
    """Stands in for a live socket-holding driver connection."""

    def close(self):
        return None


def connect(dsn):
    return Connection()


def open_link(dsn):
    """A factory whose return value is an open connection (one hop)."""
    return db_connect(dsn)


def db_connect(dsn):
    return connect(dsn)
