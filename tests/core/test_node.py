"""Search-tree node bookkeeping tests."""

import pytest

from repro.catalog import Index
from repro.core.node import ActionStats, TreeNode


@pytest.fixture
def actions(star_schema):
    fact = star_schema.table("fact")
    return [Index.build(fact, [c]) for c in ("fk1", "fk2", "cat")]


class TestActionStats:
    def test_prior_before_visits(self):
        stats = ActionStats(prior=0.4)
        assert stats.q_value == 0.4

    def test_mean_after_visits(self):
        stats = ActionStats(prior=0.4)
        stats.update(0.2)
        stats.update(0.6)
        assert stats.q_value == pytest.approx(0.4)
        assert stats.visits == 2


class TestTreeNode:
    def test_create_seeds_priors(self, actions):
        node = TreeNode.create(frozenset(), actions, {actions[0]: 0.7})
        assert node.q_value(actions[0]) == 0.7
        assert node.q_value(actions[1]) == 0.0

    def test_negative_prior_clamped(self, actions):
        node = TreeNode.create(frozenset(), actions, {actions[0]: -0.5})
        assert node.q_value(actions[0]) == 0.0

    def test_update_counts_visits(self, actions):
        node = TreeNode.create(frozenset(), actions)
        node.update(actions[0], 0.5)
        node.update(actions[1], 0.1)
        assert node.visits == 2
        assert node.action_visits(actions[0]) == 1

    def test_leaf_and_terminal(self, actions):
        node = TreeNode.create(frozenset(), actions)
        assert node.is_leaf
        assert not node.is_terminal
        terminal = TreeNode.create(frozenset(actions), [])
        assert terminal.is_terminal

    def test_best_action_by_q(self, actions):
        node = TreeNode.create(frozenset(), actions)
        node.update(actions[1], 0.9)
        node.update(actions[0], 0.2)
        assert node.best_action_by_q() == actions[1]

    def test_best_action_none_when_terminal(self, actions):
        assert TreeNode.create(frozenset(actions), []).best_action_by_q() is None

    def test_subtree_size(self, actions):
        root = TreeNode.create(frozenset(), actions)
        child = TreeNode.create(frozenset({actions[0]}), actions[1:])
        root.children[actions[0]] = child
        grandchild = TreeNode.create(frozenset(actions[:2]), actions[2:])
        child.children[actions[1]] = grandchild
        assert root.subtree_size() == 3
