"""The session event stream: a structured trace of one tuning session.

Every :class:`~repro.tuners.base.TuningSession` owns an :class:`EventLog`;
the what-if optimizer, the budget policy, and the tuner all append
:class:`SessionEvent` records to it as the session unfolds. The stream is
consumed by the eval runner (aggregate counts per cell), the CLI ``--trace``
flag (JSON lines), and tests (asserting budget discipline without poking
private state).

Event kinds (the taxonomy of DESIGN.md "Session & budget architecture"):

``whatif_call``
    One *counted* what-if call was committed (``qid``, ``size`` — the
    normalized configuration's cardinality — and ``cost``).
``budget_grant``
    The budget policy granted a counted call to ``qid``.
``budget_deny``
    The policy denied a counted call to ``qid``. Emitted once per query per
    denial regime (re-armed when a reallocation opens new headroom) so hot
    derived-cost loops cannot flood the stream.
``checkpoint``
    The tuner recorded a convergence checkpoint (``size``, optionally
    ``improvement`` in percent when the policy tracks progress).
``phase``
    The tuner entered a named phase (``name``), e.g. ``priors`` →
    ``episodes`` → ``extraction`` for MCTS.
``stop``
    The policy halted the session early (``reason``), e.g. the Esc-style
    plateau detector of :class:`~repro.budget.esc.EarlyStopPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import TuningError

#: The closed set of event kinds a session may emit.
EVENT_KINDS = (
    "whatif_call",
    "budget_grant",
    "budget_deny",
    "checkpoint",
    "phase",
    "stop",
)


@dataclass(frozen=True, slots=True)
class SessionEvent:
    """One entry of the session event stream.

    Attributes:
        ordinal: 1-based position in the stream.
        kind: One of :data:`EVENT_KINDS`.
        calls_used: Counted what-if calls consumed when the event fired.
        payload: Kind-specific JSON-serialisable details.
    """

    ordinal: int
    kind: str
    calls_used: int
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """A JSON-serialisable view (the ``--trace`` line format)."""
        return {
            "ordinal": self.ordinal,
            "kind": self.kind,
            "calls_used": self.calls_used,
            **self.payload,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SessionEvent":
        """Rebuild an event from :meth:`to_json` output (trace round-trip)."""
        payload = {
            key: value
            for key, value in data.items()
            if key not in ("ordinal", "kind", "calls_used")
        }
        return cls(
            ordinal=data["ordinal"],
            kind=data["kind"],
            calls_used=data["calls_used"],
            payload=payload,
        )


class EventLog:
    """An append-only stream of :class:`SessionEvent` records.

    Observers registered via :meth:`add_observer` see every event as it is
    emitted — the hook the opt-in runtime sanitizers
    (:mod:`repro.lint.sanitizers`) use to validate the stream online. An
    observer that raises aborts the emitting operation.
    """

    def __init__(self) -> None:
        self._events: list[SessionEvent] = []
        self._observers: list[Any] = []

    def add_observer(self, observer) -> None:
        """Register ``observer(event)`` to be called on every emit."""
        self._observers.append(observer)

    @property
    def observers(self) -> tuple:
        """The registered observers (read-only view)."""
        return tuple(self._observers)

    def emit(self, kind: str, calls_used: int, **payload: Any) -> SessionEvent:
        """Append one event, notify observers, and return it."""
        if kind not in EVENT_KINDS:
            raise TuningError(f"unknown session event kind {kind!r}")
        event = SessionEvent(
            ordinal=len(self._events) + 1,
            kind=kind,
            calls_used=calls_used,
            payload=payload,
        )
        self._events.append(event)
        for observer in self._observers:
            observer(event)
        return event

    @property
    def events(self) -> list[SessionEvent]:
        """The stream so far (a copy)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SessionEvent]:
        return iter(list(self._events))

    def counts(self) -> dict[str, int]:
        """Events per kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out
