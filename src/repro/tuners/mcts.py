"""The MCTS tuner — the paper's budget-aware enumeration algorithm.

A thin facade over :class:`repro.core.search.MCTSSearch` fitting the common
:class:`~repro.tuners.base.Tuner` interface. The default configuration is
the paper's reported best setting: ε-greedy action selection seeded with
singleton priors (Algorithm 4), myopic rollout with step size 0, and greedy
(BG) extraction.
"""

from __future__ import annotations

from repro.catalog import Index
from repro.config import MCTSConfig
from repro.core.search import MCTSSearch
from repro.tuners.base import Tuner, TuningSession


class MCTSTuner(Tuner):
    """Budget-aware MCTS configuration enumeration (Sections 5-6).

    Args:
        config: MCTS policy knobs; defaults to the paper's best setting.
        seed: RNG seed (the paper averages five seeds per data point).
    """

    name = "mcts"

    def __init__(self, config: MCTSConfig | None = None, seed: int | None = None):
        self._config = config or MCTSConfig()
        self._seed = seed
        self._last_search: MCTSSearch | None = None

    @property
    def config(self) -> MCTSConfig:
        return self._config

    @property
    def last_search(self) -> MCTSSearch | None:
        """The search object of the most recent :meth:`tune` (diagnostics)."""
        return self._last_search

    def _enumerate(self, session: TuningSession) -> frozenset[Index]:
        search = MCTSSearch(
            session=session,
            config=self._config,
            seed=self._seed,
        )
        self._last_search = search
        best, _ = search.run()
        return best
