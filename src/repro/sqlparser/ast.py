"""Abstract syntax tree for the supported SELECT subset."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified: ``table.column`` or ``column``."""

    column: str
    table: str | None = None

    def render(self) -> str:
        """SQL rendering of the reference."""
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A literal value; ``value`` is ``float`` for numbers, ``str`` for strings."""

    value: float | str

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, float)

    def render(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class Aggregate:
    """An aggregate select item, e.g. ``SUM(l_extendedprice)`` or ``COUNT(*)``.

    Attributes:
        func: One of ``COUNT``, ``SUM``, ``AVG``, ``MIN``, ``MAX``.
        argument: The aggregated column, or ``None`` for ``COUNT(*)``.
    """

    func: str
    argument: ColumnRef | None = None

    def render(self) -> str:
        inner = self.argument.render() if self.argument else "*"
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One item of the projection list.

    Attributes:
        expression: A :class:`ColumnRef`, an :class:`Aggregate`, or the
            string ``"*"`` for a bare star.
        alias: Optional ``AS`` alias.
    """

    expression: ColumnRef | Aggregate | str
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    table: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by within the query."""
        return self.alias or self.table


@dataclass(frozen=True)
class Comparison:
    """``left op right`` where operands are column refs or literals.

    ``op`` is one of ``=``, ``<``, ``>``, ``<=``, ``>=``, ``<>``. A
    comparison between two :class:`ColumnRef` operands is a join predicate;
    between a column and a literal, a filter predicate.
    """

    left: ColumnRef | Literal
    op: str
    right: ColumnRef | Literal

    @property
    def is_join(self) -> bool:
        return isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef)


@dataclass(frozen=True)
class Between:
    """``column BETWEEN low AND high`` (inclusive range)."""

    column: ColumnRef
    low: Literal
    high: Literal


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[Literal, ...]


@dataclass(frozen=True)
class Like:
    """``column LIKE pattern`` — ``negated`` for ``NOT LIKE``."""

    column: ColumnRef
    pattern: str
    negated: bool = False

    @property
    def has_leading_wildcard(self) -> bool:
        """Whether the pattern starts with ``%``/``_`` (defeats index seeks)."""
        return self.pattern.startswith(("%", "_"))


@dataclass(frozen=True)
class IsNull:
    """``column IS [NOT] NULL``."""

    column: ColumnRef
    negated: bool = False


#: Union of predicate node types produced by the parser.
Predicate = Comparison | Between | InList | Like | IsNull


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY element."""

    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT statement.

    The WHERE clause is a flat conjunction: the grammar only admits
    ``AND``-connected predicates, mirroring the workloads the paper tunes
    (star/snowflake analytics with conjunctive filter and join predicates).
    """

    select_items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    predicates: tuple[Predicate, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    distinct: bool = False
    limit: int | None = None

    @property
    def join_predicates(self) -> tuple[Comparison, ...]:
        """Equality comparisons between two column references."""
        return tuple(
            p
            for p in self.predicates
            if isinstance(p, Comparison) and p.is_join and p.op == "="
        )

    @property
    def filter_predicates(self) -> tuple[Predicate, ...]:
        """All predicates that are not join predicates."""
        joins = set(self.join_predicates)
        return tuple(p for p in self.predicates if p not in joins)

