"""E-F2 — Figure 2: what-if calls dominate TPC-DS tuning time (K=20)."""

from conftest import run_once

from repro.eval.experiments import figure2_whatif_time


def test_fig02_whatif_time(benchmark, settings, archive):
    rows, text = run_once(benchmark, lambda: figure2_whatif_time(settings))
    series = {
        "whatif_share": [
            {
                "budget": budget,
                "whatif_seconds": breakdown.whatif_seconds,
                "other_seconds": breakdown.other_seconds,
                "whatif_fraction": breakdown.whatif_fraction,
            }
            for budget, breakdown in rows
        ]
    }
    archive("fig02_whatif_time", text, series=series)
    # The what-if share grows toward the paper's 75-93% band with budget.
    fractions = [breakdown.whatif_fraction for _, breakdown in rows]
    assert fractions == sorted(fractions)
    assert len(rows) == 5
