"""Grammar fuzzing: generated SQL in the supported subset must always parse.

A hypothesis strategy assembles random statements from the grammar's
building blocks (identifiers, literals, predicates, clauses); the parser
must accept every one of them and reflect the structure back faithfully.
"""

from hypothesis import given, settings, strategies as st

from repro.sqlparser import ast, parse_select

_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "ORDER", "BY",
        "HAVING", "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS",
        "NULL", "ASC", "DESC", "JOIN", "INNER", "ON", "LIMIT", "COUNT",
        "SUM", "AVG", "MIN", "MAX",
    }
)
_NUMBER = st.integers(min_value=-10_000, max_value=10_000)
_STRING = st.from_regex(r"[a-zA-Z0-9 ]{0,12}", fullmatch=True)


@st.composite
def _column_ref(draw):
    if draw(st.booleans()):
        return f"{draw(_IDENT)}.{draw(_IDENT)}"
    return draw(_IDENT)


@st.composite
def _predicate(draw):
    column = draw(_column_ref())
    kind = draw(st.integers(0, 5))
    if kind == 0:
        op = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
        return f"{column} {op} {draw(_NUMBER)}"
    if kind == 1:
        lo = draw(_NUMBER)
        return f"{column} BETWEEN {lo} AND {lo + draw(st.integers(0, 100))}"
    if kind == 2:
        values = draw(st.lists(_NUMBER, min_size=1, max_size=4))
        return f"{column} IN ({', '.join(map(str, values))})"
    if kind == 3:
        return f"{column} LIKE '{draw(_STRING)}%'"
    if kind == 4:
        return f"{column} IS NULL"
    return f"{column} = '{draw(_STRING)}'"


@st.composite
def _statement(draw):
    columns = draw(st.lists(_column_ref(), min_size=1, max_size=4))
    tables = draw(st.lists(_IDENT, min_size=1, max_size=4, unique=True))
    predicates = draw(st.lists(_predicate(), min_size=0, max_size=4))
    sql = f"SELECT {', '.join(columns)} FROM {', '.join(tables)}"
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    if draw(st.booleans()):
        sql += f" GROUP BY {draw(_column_ref())}"
    elif draw(st.booleans()):
        direction = draw(st.sampled_from(["", " ASC", " DESC"]))
        sql += f" ORDER BY {draw(_column_ref())}{direction}"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(0, 1000))}"
    return sql, len(tables), len(predicates)


@settings(max_examples=120, deadline=None)
@given(data=_statement())
def test_generated_statements_always_parse(data):
    sql, num_tables, num_predicates = data
    statement = parse_select(sql)
    assert len(statement.tables) == num_tables
    assert len(statement.predicates) == num_predicates


@settings(max_examples=60, deadline=None)
@given(data=_statement())
def test_parse_is_deterministic(data):
    sql, _, _ = data
    assert parse_select(sql) == parse_select(sql)


@settings(max_examples=60, deadline=None)
@given(
    table=_IDENT,
    column=_IDENT,
    value=_NUMBER,
)
def test_comparison_canonicalisation(table, column, value):
    """Literal-first comparisons always normalise to column-first."""
    statement = parse_select(f"SELECT {column} FROM {table} WHERE {value} < {column}")
    predicate = statement.predicates[0]
    assert isinstance(predicate.left, ast.ColumnRef)
    assert predicate.op == ">"
