"""JSONL trace format shared by the record and replay backends.

A trace is a line-delimited JSON file. The first line is a header::

    {"type": "header", "version": 1, "workload": "tpch",
     "queries": 22, "normalize_cache": true}

and every following line is one recorded cost::

    {"type": "cost", "qid": "q03", "key": ["lineitem(l_orderkey)"],
     "cost": 123456.789}

``key`` is the *canonical configuration key*: the sorted
:meth:`~repro.catalog.Index.display` strings of the (normalized)
configuration the cost was priced under; the empty configuration is
``[]``. Python's JSON float round-trip is exact, so replaying a trace
reproduces every cost bit-for-bit.

The header pins the two facts replay must agree on: the workload (by name
and query count) and the cache-normalization setting, because keys are
recorded *post*-normalization and a session normalizing differently would
look up keys that were never written.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.catalog import Index
from repro.exceptions import TraceError

#: Trace format version written by this module.
TRACE_VERSION = 1

#: A canonical configuration key: sorted index display strings.
TraceKey = tuple[str, ...]


def canonical_key(key: frozenset[Index] | frozenset) -> TraceKey:
    """Serialise a configuration into its canonical trace key."""
    return tuple(sorted(ix.display() for ix in key))


@dataclass(frozen=True)
class TraceHeader:
    """The identity line of a trace file.

    Attributes:
        workload: Name of the workload the trace was recorded against.
        queries: Number of queries in that workload (cheap drift check).
        normalize_cache: Cache-normalization setting of the recording
            session; replay adopts it.
        version: Trace format version.
    """

    workload: str
    queries: int
    normalize_cache: bool
    version: int = TRACE_VERSION

    def as_json(self) -> str:
        return json.dumps(
            {
                "type": "header",
                "version": self.version,
                "workload": self.workload,
                "queries": self.queries,
                "normalize_cache": self.normalize_cache,
            }
        )


def write_trace(
    path: str | Path, header: TraceHeader, costs: dict[tuple[str, TraceKey], float]
) -> int:
    """Write a trace file; returns the number of cost lines written.

    Cost lines are sorted by (qid, key) so traces are byte-stable
    regardless of the order the recording session priced pairs in.
    """
    lines = [header.as_json()]
    for (qid, key), cost in sorted(costs.items()):
        lines.append(
            json.dumps({"type": "cost", "qid": qid, "key": list(key), "cost": cost})
        )
    Path(path).write_text("\n".join(lines) + "\n")
    return len(costs)


def read_trace(path: str | Path) -> tuple[TraceHeader, dict[tuple[str, TraceKey], float]]:
    """Parse a trace file into its header and cost map.

    Raises:
        TraceError: On a missing file, malformed JSONL, an unsupported
            version, or a missing/duplicate header.
    """
    trace_path = Path(path)
    try:
        text = trace_path.read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace {trace_path}: {exc}") from exc
    header: TraceHeader | None = None
    costs: dict[tuple[str, TraceKey], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"{trace_path}:{lineno}: malformed trace line: {exc}"
            ) from exc
        kind = record.get("type")
        if kind == "header":
            if header is not None:
                raise TraceError(f"{trace_path}:{lineno}: duplicate trace header")
            version = record.get("version")
            if version != TRACE_VERSION:
                raise TraceError(
                    f"{trace_path}: unsupported trace version {version!r} "
                    f"(expected {TRACE_VERSION})"
                )
            header = TraceHeader(
                workload=record["workload"],
                queries=int(record["queries"]),
                normalize_cache=bool(record["normalize_cache"]),
            )
        elif kind == "cost":
            try:
                costs[(record["qid"], tuple(record["key"]))] = float(record["cost"])
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceError(
                    f"{trace_path}:{lineno}: malformed cost line: {exc}"
                ) from exc
        else:
            raise TraceError(
                f"{trace_path}:{lineno}: unknown trace record type {kind!r}"
            )
    if header is None:
        raise TraceError(f"{trace_path}: trace has no header line")
    return header, costs
