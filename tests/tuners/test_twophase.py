"""Two-phase greedy (Algorithm 2) tests."""

import pytest

from repro.config import TuningConstraints
from repro.tuners import TwoPhaseGreedyTuner, VanillaGreedyTuner


class TestTwoPhase:
    def test_respects_budget_and_cardinality(self, toy_workload, toy_candidates):
        result = TwoPhaseGreedyTuner().tune(
            toy_workload,
            budget=60,
            constraints=TuningConstraints(max_indexes=4),
            candidates=toy_candidates,
        )
        assert result.calls_used <= 60
        assert len(result.configuration) <= 4

    def test_improvement_non_negative(self, toy_workload, toy_candidates):
        result = TwoPhaseGreedyTuner().tune(
            toy_workload, budget=150, candidates=toy_candidates
        )
        assert result.true_improvement() >= 0.0

    def test_beats_vanilla_at_small_budget(self, toy_workload, toy_candidates):
        """The paper's core observation: vanilla greedy has a slow start."""
        budget = 40
        constraints = TuningConstraints(max_indexes=5)
        vanilla = VanillaGreedyTuner().tune(
            toy_workload, budget=budget, constraints=constraints,
            candidates=toy_candidates,
        )
        two_phase = TwoPhaseGreedyTuner().tune(
            toy_workload, budget=budget, constraints=constraints,
            candidates=toy_candidates,
        )
        assert two_phase.true_improvement() >= vanilla.true_improvement()

    def test_full_pool_variant(self, toy_workload, toy_candidates):
        result = TwoPhaseGreedyTuner(per_query_candidates=False).tune(
            toy_workload, budget=100, candidates=toy_candidates
        )
        assert result.calls_used <= 100

    def test_deterministic(self, toy_workload, toy_candidates):
        first = TwoPhaseGreedyTuner().tune(
            toy_workload, budget=80, candidates=toy_candidates
        )
        second = TwoPhaseGreedyTuner().tune(
            toy_workload, budget=80, candidates=toy_candidates
        )
        assert first.configuration == second.configuration

    def test_final_config_subset_of_candidates(self, toy_workload, toy_candidates):
        result = TwoPhaseGreedyTuner().tune(
            toy_workload, budget=100, candidates=toy_candidates
        )
        assert result.configuration <= frozenset(toy_candidates)
