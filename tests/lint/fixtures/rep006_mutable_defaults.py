"""REP006 fixtures: shared mutable defaults."""

from dataclasses import dataclass, field
from typing import ClassVar


def bad_list(items=[]):  # repro-lint-expect: REP006
    return items


def bad_mapping(mapping={}):  # repro-lint-expect: REP006
    return mapping


def bad_kwonly(*, pool=set()):  # repro-lint-expect: REP006
    return pool


def fine(items=None, count=0, name="x", pair=(1, 2)):
    return items if items is not None else []


@dataclass
class BadRecord:
    tags: list = []  # repro-lint-expect: REP006


@dataclass
class GoodRecord:
    tags: list = field(default_factory=list)


class BadCatalog:
    shared_state = {}  # repro-lint-expect: REP006


class GoodCatalog:
    registry: ClassVar[dict] = {}

    def __init__(self):
        self.state = {}


class JustifiedCatalog:
    shared_state = {}  # repro-lint: off[REP006]
