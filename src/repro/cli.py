"""Command-line interface: ``python -m repro <command>``.

Commands:
    workloads               list the built-in workloads with their statistics
    tune                    run a budget-aware tuning session
    eval                    run a registered paper experiment (figures/tables)
    explain                 show a query's hypothetical plan under a config
    compress                compress a workload and show the representatives
    load                    materialise a workload into a live Postgres

Examples:
    python -m repro workloads
    python -m repro tune --workload tpch --budget 300 --max-indexes 10
    python -m repro tune --workload tpch --budget 300 --seeds 5 --jobs 4
    python -m repro tune --workload tpcds --algo two_phase --minutes 30
    python -m repro tune --workload tpch --budget 300 --backend record \\
        --backend-trace trace.jsonl
    python -m repro tune --workload tpch --budget 300 --backend replay \\
        --backend-trace trace.jsonl
    python -m repro load --workload toy --pg-dsn postgresql://localhost/repro
    python -m repro tune --workload toy --budget 60 --backend postgres \\
        --pg-dsn postgresql://localhost/repro
    python -m repro eval --figure fig17 --jobs 4 --json reports/BENCH_fig17.json
    python -m repro eval --figure robustness --json -
    python -m repro explain --workload tpch --query q3 --budget 100
    python -m repro compress --workload tpcds --target 20
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.backend.factory import BACKEND_NAMES, BackendSpec, build_backend
from repro.budget.policy import POLICY_NAMES
from repro.config import MCTSConfig, ReproConfig, TuningConstraints
from repro.eval.experiments import EXPERIMENTS, ExperimentSettings, run_experiment
from repro.eval.report import bench_payload
from repro.eval.runner import ExperimentRunner
from repro.eval.timemodel import WhatIfTimeModel
from repro.exceptions import ReproError, TuningError
from repro.rng import spawn_seeds
from repro.tuners import (
    AutoAdminGreedyTuner,
    DBABanditTuner,
    DTATuner,
    MCTSTuner,
    NoDBATuner,
    RandomSearchTuner,
    TimeBudgetedTuner,
    TwoPhaseGreedyTuner,
    VanillaGreedyTuner,
)
from repro.workload.analysis import bind_query
from repro.workload.compression import WorkloadCompressor
from repro.workload.suites import available_workloads, get_workload

_ALGORITHMS = {
    "mcts": lambda args: MCTSTuner(
        config=MCTSConfig(
            selection_policy=args.selection,
            rollout_policy=args.rollout,
            extraction=args.extraction,
        ),
        seed=args.seed,
    ),
    "vanilla": lambda args: VanillaGreedyTuner(),
    "two_phase": lambda args: TwoPhaseGreedyTuner(),
    "autoadmin": lambda args: AutoAdminGreedyTuner(),
    "dba_bandits": lambda args: DBABanditTuner(seed=args.seed),
    "no_dba": lambda args: NoDBATuner(seed=args.seed),
    "dta": lambda args: DTATuner(),
    "random": lambda args: RandomSearchTuner(seed=args.seed),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Budget-aware index tuning (SIGMOD 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list built-in workloads")

    tune = sub.add_parser("tune", help="run a tuning session")
    tune.add_argument("--workload", required=True, choices=available_workloads())
    tune.add_argument("--scale", type=float, default=0.1,
                      help="structural scale for generated workloads (default 0.1)")
    tune.add_argument("--algo", default="mcts", choices=sorted(_ALGORITHMS))
    budget_group = tune.add_mutually_exclusive_group(required=True)
    budget_group.add_argument("--budget", type=int, help="what-if call budget B")
    budget_group.add_argument("--minutes", type=float,
                              help="tuning-time budget (mapped to calls)")
    tune.add_argument("--max-indexes", type=int, default=10, help="K (default 10)")
    tune.add_argument("--max-storage-gb", type=float, default=None,
                      help="storage constraint in GB (default: none)")
    tune.add_argument("--min-improvement", type=float, default=None,
                      help="minimum required improvement %% (default: none)")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--selection", default="epsilon_greedy",
                      choices=("epsilon_greedy", "uct", "boltzmann"))
    tune.add_argument("--rollout", default="myopic", choices=("myopic", "random"))
    tune.add_argument("--extraction", default="bg", choices=("bg", "bce"))
    tune.add_argument("--budget-policy", default="fcfs", choices=POLICY_NAMES,
                      help="budget discipline (default fcfs; wii/esc change "
                           "which calls are granted)")
    tune.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                      help="cost backend (default: REPRO_BACKEND or analytic). "
                           "record captures a what-if trace, replay serves one "
                           "with zero cost-model calls, noisy perturbs costs")
    tune.add_argument("--backend-trace", default=None, metavar="PATH",
                      help="trace file the record backend writes / the replay "
                           "backend reads (default: REPRO_BACKEND_TRACE)")
    tune.add_argument("--noise", type=float, default=None,
                      help="noise scale sigma for --backend noisy "
                           "(default: REPRO_NOISE or 0.1)")
    tune.add_argument("--noise-seed", type=int, default=None,
                      help="perturbation seed for --backend noisy "
                           "(default: REPRO_NOISE_SEED or 0)")
    tune.add_argument("--pg-dsn", default=None, metavar="DSN",
                      help="connection string for --backend postgres "
                           "(default: REPRO_PG_DSN)")
    tune.add_argument("--pg-schema", default=None, metavar="SCHEMA",
                      help="schema holding the tables for --backend postgres "
                           "(default: REPRO_PG_SCHEMA or search_path)")
    tune.add_argument("--pricing-jobs", type=int, default=None, metavar="N",
                      help="concurrent pricing workers for batched what-if "
                           "pricing (default: REPRO_PRICING_JOBS or 1); "
                           "results are bit-identical to serial pricing")
    tune.add_argument("--whatif-cache", default=None, metavar="PATH",
                      help="persistent cross-session what-if cache directory "
                           "('1'/'default' = ~/.cache/repro; default: "
                           "REPRO_WHATIF_CACHE or disabled); never changes "
                           "costs or budget accounting")
    tune.add_argument("--trace", default=None, metavar="PATH",
                      help="write the session event stream as JSON lines to "
                           "PATH ('-' for stdout)")
    tune.add_argument("--sanitize", action="store_true",
                      help="install the runtime sanitizers (monotonicity + "
                           "event-stream invariants; see repro.lint.sanitizers)")
    tune.add_argument("--seeds", type=int, default=1,
                      help="run this many seeded repetitions (spawned from "
                           "--seed) and report mean ± std (default 1)")
    tune.add_argument("--jobs", type=int, default=1,
                      help="worker processes for --seeds > 1 (default 1; "
                           "results are bit-identical to --jobs 1)")

    ev = sub.add_parser("eval", help="run a registered paper experiment")
    ev.add_argument("--figure", required=True, choices=sorted(EXPERIMENTS),
                    help="experiment id (fig02..fig23, table1, robustness)")
    ev.add_argument("--scale", type=float, default=None,
                    help="budget multiplier (default: REPRO_SCALE or 0.1)")
    ev.add_argument("--seeds", type=int, default=None,
                    help="stochastic seed count (default: REPRO_SEEDS or 3)")
    ev.add_argument("--ks", default=None,
                    help="cardinality grid, e.g. '5,10,20' (default: REPRO_KS)")
    ev.add_argument("--jobs", type=int, default=None,
                    help="worker processes for the grid (default: REPRO_JOBS "
                         "or 1); bit-identical to a serial run")
    ev.add_argument("--backend", default=None,
                    choices=("analytic", "noisy", "postgres"),
                    help="cost backend for the grid cells (default: "
                         "REPRO_BACKEND or analytic; record/replay are "
                         "single-session and not valid in grids)")
    ev.add_argument("--noise", type=float, default=None,
                    help="noise scale sigma for --backend noisy "
                         "(default: REPRO_NOISE or 0.1)")
    ev.add_argument("--noise-seed", type=int, default=None,
                    help="perturbation seed for --backend noisy "
                         "(default: REPRO_NOISE_SEED or 0)")
    ev.add_argument("--pg-dsn", default=None, metavar="DSN",
                    help="connection string for --backend postgres "
                         "(default: REPRO_PG_DSN)")
    ev.add_argument("--pricing-jobs", type=int, default=None, metavar="N",
                    help="concurrent pricing workers inside each grid cell "
                         "(default: REPRO_PRICING_JOBS or 1); records are "
                         "bit-identical to serial pricing")
    ev.add_argument("--whatif-cache", default=None, metavar="PATH",
                    help="persistent cross-session what-if cache directory "
                         "('1'/'default' = ~/.cache/repro; default: "
                         "REPRO_WHATIF_CACHE or disabled)")
    ev.add_argument("--json", default=None, metavar="PATH",
                    help="write the machine-readable BENCH payload to PATH "
                         "('-' for stdout)")

    explain = sub.add_parser("explain", help="show a hypothetical plan")
    explain.add_argument("--workload", required=True, choices=available_workloads())
    explain.add_argument("--scale", type=float, default=0.1)
    explain.add_argument("--query", required=True, help="query id, e.g. q3")
    explain.add_argument("--budget", type=int, default=200,
                         help="budget for the tuning pass that picks indexes")
    explain.add_argument("--max-indexes", type=int, default=10)
    explain.add_argument("--seed", type=int, default=0)

    compress = sub.add_parser("compress", help="compress a workload")
    compress.add_argument("--workload", required=True, choices=available_workloads())
    compress.add_argument("--scale", type=float, default=0.1)
    compress.add_argument("--target", type=int, required=True,
                          help="number of representative queries to keep")

    load = sub.add_parser(
        "load", help="materialise a workload into a live Postgres (for "
                     "--backend postgres)"
    )
    load.add_argument("--workload", required=True, choices=available_workloads())
    load.add_argument("--scale", type=float, default=0.1,
                      help="row-count scale applied to the catalog "
                           "cardinalities (default 0.1)")
    load.add_argument("--max-rows", type=int, default=100_000,
                      help="per-table row cap (default 100000)")
    load.add_argument("--pg-dsn", default=None, metavar="DSN",
                      help="connection string (default: REPRO_PG_DSN)")
    load.add_argument("--pg-schema", default=None, metavar="SCHEMA",
                      help="schema to create the tables in "
                           "(default: REPRO_PG_SCHEMA or search_path)")
    return parser


def _cmd_workloads(args: argparse.Namespace) -> int:
    print(f"{'name':8s} {'#queries':>9s} {'#tables':>8s} {'size':>10s}")
    for name in available_workloads():
        workload = get_workload(name, scale=0.1)
        gigabytes = workload.schema.total_size_bytes / 1e9
        print(
            f"{name:8s} {len(workload):9d} {len(workload.schema.tables):8d} "
            f"{gigabytes:8.1f}GB"
        )
    print("\n(table counts at --scale 0.1 for the generated Real workloads)")
    return 0


def _write_trace(result, destination: str) -> None:
    """Dump the session event stream as JSON lines (``-`` = stdout)."""
    lines = [json.dumps(event.to_json()) for event in result.events]
    if destination == "-":
        for line in lines:
            print(line)
        return
    with open(destination, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    print(f"trace: {len(lines)} events -> {destination}")


def _backend_spec(args: argparse.Namespace) -> BackendSpec | None:
    """The tune command's backend selection (``None`` = env/config default).

    Returns ``None`` when no backend flag was given, so the downstream
    resolution (:func:`repro.backend.factory.resolve_spec`) falls back to
    ``REPRO_BACKEND`` and friends exactly as library callers do. Any single
    flag switches to an explicit spec built from the environment defaults
    with only the given overrides applied, so e.g. ``--pricing-jobs`` alone
    never resets ``REPRO_BACKEND``.
    """
    overrides = {
        field: value
        for field, value in (
            ("name", args.backend),
            ("trace_path", args.backend_trace),
            ("noise", args.noise),
            ("noise_seed", args.noise_seed),
            ("pg_dsn", args.pg_dsn),
            ("pg_schema", args.pg_schema),
            ("pricing_jobs", args.pricing_jobs),
            ("whatif_cache", args.whatif_cache),
        )
        if value is not None
    }
    if not overrides:
        return None
    config = ReproConfig.from_env()
    name = overrides.get("name", config.backend)
    trace = overrides.get("trace_path", config.backend_trace)
    if name in ("record", "replay") and not trace:
        raise TuningError(f"--backend {name} requires --backend-trace PATH")
    defaults = {
        "name": config.backend,
        "trace_path": config.backend_trace,
        "noise": config.noise,
        "noise_seed": config.noise_seed,
        "pg_dsn": config.pg_dsn,
        "pg_schema": config.pg_schema,
        "pricing_jobs": config.pricing_jobs,
        "whatif_cache": config.whatif_cache,
    }
    return BackendSpec(**{**defaults, **overrides})


def _cmd_tune_multi_seed(args: argparse.Namespace, workload, constraints) -> int:
    """``tune --seeds N [--jobs M]``: seed-averaged runs, mean ± std."""
    if args.minutes is not None:
        print("error: --seeds > 1 requires --budget (not --minutes)",
              file=sys.stderr)
        return 2
    if args.trace is not None or args.sanitize:
        print("error: --trace/--sanitize apply to single runs; drop --seeds "
              "or set REPRO_SANITIZE=1 for sanitized multi-seed runs",
              file=sys.stderr)
        return 2
    backend = _backend_spec(args)
    if backend is not None and backend.name == "record":
        print("error: --backend record captures a single session's trace; "
              "drop --seeds", file=sys.stderr)
        return 2

    def factory(seed: int):
        return _ALGORITHMS[args.algo](
            argparse.Namespace(**{**vars(args), "seed": seed})
        )

    runner = ExperimentRunner(
        workload,
        seeds=spawn_seeds(args.seed, args.seeds),
        keep_results=False,
        parallel=args.jobs,
    )
    record = runner.run_cell(
        factory,
        args.budget,
        constraints,
        stochastic=True,
        budget_policy=args.budget_policy,
        backend=backend,
    )
    print(
        f"{record.tuner}: {record.improvement_mean:.1f}% ± "
        f"{record.improvement_std:.1f} improvement over {args.seeds} seeds "
        f"({args.jobs} job{'s' if args.jobs != 1 else ''}), "
        f"{record.calls_used:.1f} what-if calls used on average"
    )
    for metrics in record.seed_metrics:
        stop = f", stopped: {metrics['stop_reason']}" if metrics["stop_reason"] else ""
        print(
            f"  seed {metrics['seed']:>10d}: {metrics['improvement']:6.1f}% "
            f"in {metrics['calls_used']} calls{stop}"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload, scale=args.scale)
    constraints = TuningConstraints(
        max_indexes=args.max_indexes,
        max_storage_bytes=(
            int(args.max_storage_gb * 1e9) if args.max_storage_gb else None
        ),
        min_improvement_percent=args.min_improvement,
    )
    if args.seeds < 1:
        print(f"error: --seeds must be positive, got {args.seeds}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"error: --jobs must be positive, got {args.jobs}", file=sys.stderr)
        return 2
    if args.seeds > 1:
        return _cmd_tune_multi_seed(args, workload, constraints)
    tuner = _ALGORITHMS[args.algo](args)
    backend = _backend_spec(args)
    optimizer_config = (
        replace(ReproConfig.from_env(), sanitize=True) if args.sanitize else None
    )
    if args.minutes is not None:
        adapter = TimeBudgetedTuner(tuner)
        result = adapter.tune_for_minutes(
            workload,
            args.minutes,
            constraints=constraints,
            optimizer_config=optimizer_config,
            backend=backend,
        )
        model = WhatIfTimeModel(workload)
        print(
            f"time budget {args.minutes:.0f} min -> "
            f"{result.budget} what-if calls "
            f"(~{model.mean_call_seconds:.2f}s/call)"
        )
    else:
        result = tuner.tune(
            workload,
            budget=args.budget,
            constraints=constraints,
            optimizer_config=optimizer_config,
            budget_policy=args.budget_policy,
            backend=backend,
        )

    if args.trace is not None:
        _write_trace(result, args.trace)
    print(
        f"{result.tuner}: {result.true_improvement():.1f}% improvement, "
        f"{result.calls_used} what-if calls used"
    )
    if result.stop_reason is not None:
        print(f"stopped early: {result.stop_reason}")
    if result.optimizer is not None:
        stats = result.optimizer.stats
        print(
            f"what-if cache: {100.0 * stats.hit_rate:.1f}% hit rate "
            f"({stats.cache_hits} hits / {stats.cache_misses} misses), "
            f"{stats.normalized_hits} saved by normalization, "
            f"{stats.cost_seconds:.3f}s in the cost model"
        )
        if stats.replayed:
            print(f"replayed {stats.replayed} pricings from the trace "
                  "(zero cost-model invocations)")
        if stats.persistent_hits:
            print(f"persistent what-if cache: {stats.persistent_hits} pairs "
                  "recalled from earlier sessions")
        if stats.speculative_priced:
            print(f"speculative pricing: {stats.speculative_priced} pairs "
                  f"priced concurrently, {stats.speculation_wasted} wasted "
                  "past the budget")
    if result.configuration:
        print(f"recommended configuration ({len(result.configuration)} indexes):")
        for index in sorted(result.configuration, key=lambda ix: ix.display()):
            print(f"  {index.display()}")
    else:
        print("no indexes recommended")
    optimizer = result.optimizer
    if (
        optimizer is not None
        and hasattr(optimizer, "save_trace")
        # The postgres backend only records (and can only save) when a
        # trace destination was configured; replay has no save_trace.
        and getattr(optimizer, "trace_path", None) is not None
    ):
        # Save after true_improvement() above so the trace also covers the
        # ground-truth pricings a replay of this session will need.
        written = optimizer.save_trace()
        print(f"what-if trace: {written} cost lines -> {optimizer.trace_path}")
    if optimizer is not None:
        # Flush the persistent what-if cache (if any) and release pricing
        # threads / pooled connections.
        optimizer.close()
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    settings = ExperimentSettings.from_env()
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seeds is not None:
        overrides["seeds"] = args.seeds
    if args.ks is not None:
        overrides["k_values"] = tuple(
            int(k) for k in args.ks.split(",") if k.strip()
        )
    if args.jobs is not None:
        if args.jobs < 1:
            print(f"error: --jobs must be positive, got {args.jobs}",
                  file=sys.stderr)
            return 2
        overrides["jobs"] = args.jobs
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.noise is not None:
        overrides["noise"] = args.noise
    if args.noise_seed is not None:
        overrides["noise_seed"] = args.noise_seed
    if args.pg_dsn is not None:
        overrides["pg_dsn"] = args.pg_dsn
    if args.pricing_jobs is not None:
        if args.pricing_jobs < 1:
            print(f"error: --pricing-jobs must be positive, got "
                  f"{args.pricing_jobs}", file=sys.stderr)
            return 2
        overrides["pricing_jobs"] = args.pricing_jobs
    if args.whatif_cache is not None:
        overrides["whatif_cache"] = args.whatif_cache
    if overrides:
        settings = replace(settings, **overrides)
    artifact = run_experiment(args.figure, settings)
    print(artifact.text)
    if args.json is not None:
        provenance = None
        if settings.backend == "postgres" and settings.pg_dsn:
            from repro.backend.postgres import postgres_provenance

            provenance = postgres_provenance(
                settings.pg_dsn, schema=settings.pg_schema
            )
        payload = bench_payload(
            artifact.figure,
            settings=settings,
            records=artifact.records,
            series=artifact.series,
            postgres=provenance,
        )
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"bench archive: {len(artifact.records)} records -> {args.json}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload, scale=args.scale)
    query = workload.query(args.query)
    result = MCTSTuner(seed=args.seed).tune(
        workload,
        budget=args.budget,
        constraints=TuningConstraints(max_indexes=args.max_indexes),
    )
    optimizer = build_backend("analytic", workload)
    print("--- query ---")
    print(query.sql)
    print("\n--- plan without hypothetical indexes ---")
    print(optimizer.explain(query, frozenset()).render())
    print("\n--- plan with the recommended configuration ---")
    print(optimizer.explain(query, result.configuration).render())
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from repro.backend.dbms.loader import materialize_workload

    config = ReproConfig.from_env()
    dsn = args.pg_dsn or config.pg_dsn
    if not dsn:
        print("error: load needs --pg-dsn or REPRO_PG_DSN", file=sys.stderr)
        return 2
    workload = get_workload(args.workload, scale=args.scale)
    loaded = materialize_workload(
        dsn,
        workload,
        scale=args.scale,
        max_rows=args.max_rows,
        schema=args.pg_schema or config.pg_schema,
    )
    total = sum(loaded.values())
    for table, rows in loaded.items():
        print(f"  {table:12s} {rows:>9d} rows")
    print(
        f"loaded {workload.name}: {len(loaded)} tables, {total} rows "
        f"(hypopg ready)"
    )
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload, scale=args.scale)
    compressed = WorkloadCompressor(args.target).compress(workload)
    print(
        f"{workload.name}: {len(workload)} queries -> "
        f"{len(compressed)} representatives"
    )
    for query in compressed:
        bound = bind_query(workload.schema, query.statement, query.qid)
        print(
            f"  {query.qid:6s} weight={query.weight:6.1f} "
            f"joins={bound.num_joins:2d} tables={len(bound.tables)}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "workloads": _cmd_workloads,
        "tune": _cmd_tune,
        "eval": _cmd_eval,
        "explain": _cmd_explain,
        "compress": _cmd_compress,
        "load": _cmd_load,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
