"""Shared fixtures: a small star schema, a deterministic toy workload, and
session-cached benchmark workloads."""

from __future__ import annotations

import pytest

from repro.catalog import ColumnType, SchemaBuilder
from repro.config import TuningConstraints
from repro.workload import CandidateGenerator, SynthesisProfile, WorkloadSynthesizer
from repro.workload.query import Query, Workload


@pytest.fixture(scope="session")
def star_schema():
    """A 1M-row fact table with two dimensions — the standard test schema."""
    return (
        SchemaBuilder("star")
        .table("fact", rows=1_000_000)
        .column("fk1", distinct=1_000)
        .column("fk2", distinct=500)
        .column("val", ColumnType.DECIMAL, distinct=10_000, lo=0, hi=10_000)
        .column("cat", ColumnType.VARCHAR, distinct=50)
        .column("flag", ColumnType.CHAR, distinct=3)
        .table("dim1", rows=1_000)
        .column("id", distinct=1_000)
        .column("attr", distinct=20)
        .table("dim2", rows=500)
        .column("id", distinct=500)
        .column("name", ColumnType.VARCHAR, distinct=500)
        .foreign_key("fact", "fk1", "dim1", "id")
        .foreign_key("fact", "fk2", "dim2", "id")
        .build()
    )


@pytest.fixture(scope="session")
def toy_workload(star_schema):
    """A deterministic 12-query synthesized workload over the star schema."""
    profile = SynthesisProfile(num_queries=12, max_joins=2, filters_per_query=1.5)
    return WorkloadSynthesizer(star_schema, profile, seed=3).generate("toy")


@pytest.fixture(scope="session")
def toy_candidates(star_schema, toy_workload):
    return CandidateGenerator(star_schema).for_workload(toy_workload)


@pytest.fixture(scope="session")
def figure3_schema():
    """The R(a, b) / S(c, d) schema of the paper's Figure 3 example."""
    return (
        SchemaBuilder("figure3")
        .table("R", rows=100_000)
        .column("a", distinct=1_000, lo=0, hi=1_000)
        .column("b", distinct=5_000)
        .table("S", rows=200_000)
        .column("c", distinct=5_000)
        .column("d", distinct=2_000, lo=0, hi=2_000)
        .foreign_key("R", "b", "S", "c")
        .build()
    )


@pytest.fixture(scope="session")
def figure3_workload(figure3_schema):
    """The two-query workload of Figure 3."""
    q1 = Query(
        qid="Q1",
        sql="SELECT a, d FROM R, S WHERE R.b = S.c AND R.a = 5 AND S.d > 200",
    )
    q2 = Query(qid="Q2", sql="SELECT a FROM R, S WHERE R.b = S.c AND R.a = 40")
    return Workload(name="figure3", schema=figure3_schema, queries=[q1, q2])


@pytest.fixture
def small_constraints():
    return TuningConstraints(max_indexes=5)


@pytest.fixture(scope="session")
def tpch():
    from repro.workload.suites.tpch import tpch_workload

    return tpch_workload()
