"""Incremental summary cache for the flow analyzer.

Per-file summaries are pure functions of file content, so they are cached
keyed on a sha256 content hash. A warm run re-indexes only

* files whose content hash changed (or that are new), **and**
* their *reverse-dependency cone* — every cached file that (transitively)
  imports a changed module, because the link step resolves its raw
  references against symbols the change may have moved.

Everything else is loaded from the cache verbatim. Because summaries are
content-pure, a warm run's findings are byte-identical to a cold run's —
CI asserts exactly that (the cache-correctness smoke step).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.flow.index import module_name
from repro.lint.flow.summary import FileSummary, content_hash, summarize_file

#: Default cache filename (working-directory relative, gitignored).
DEFAULT_CACHE = ".repro-lint-cache.json"

#: Cache schema version; bump on any summary format change.
CACHE_VERSION = 4


@dataclass
class FlowStats:
    """What the indexing stage did — surfaced by ``--flow`` runs."""

    total_files: int = 0
    reindexed: list[str] = field(default_factory=list)
    from_cache: int = 0

    @property
    def cache_hits(self) -> int:
        return self.from_cache


def iter_python_files(paths) -> list[Path]:
    """Expand files and directory trees into a sorted ``*.py`` list."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    unique: dict[str, Path] = {}
    for path in files:
        unique.setdefault(path.as_posix(), path)
    return [unique[key] for key in sorted(unique)]


class FlowCache:
    """Load/save the JSON summary cache."""

    def __init__(self, path):
        self.path = Path(path)
        self.entries: dict[str, dict] = {}

    def load(self) -> "FlowCache":
        if not self.path.exists():
            return self
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return self  # unreadable cache == cold run
        if data.get("version") != CACHE_VERSION:
            return self
        self.entries = dict(data.get("files", {}))
        return self

    def save(self, summaries: list[FileSummary]) -> None:
        data = {
            "version": CACHE_VERSION,
            "files": {
                summary.path: summary.to_json()
                for summary in sorted(summaries, key=lambda s: s.path)
            },
        }
        self.path.write_text(
            json.dumps(data, indent=None, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def cached_summary(self, path: str, sha256: str) -> FileSummary | None:
        entry = self.entries.get(path)
        if entry is None or entry.get("sha256") != sha256:
            return None
        return FileSummary.from_json(entry)


def _reverse_cone(
    changed: set[str],
    cached: dict[str, FileSummary],
    modules: dict[str, str],
) -> set[str]:
    """Expand ``changed`` paths with every cached reverse-dependency."""
    # path -> modules it imports (from the *cached* summaries: the current
    # import set of an unchanged file equals its cached one).
    dirty_modules = {
        module for module, path in modules.items() if path in changed
    }
    cone = set(changed)
    changed_sizes = -1
    while changed_sizes != len(cone):
        changed_sizes = len(cone)
        for path, summary in cached.items():
            if path in cone:
                continue
            if any(module in dirty_modules for module in summary.import_modules):
                cone.add(path)
                dirty_modules.add(summary.module)
    return cone


def load_summaries(
    paths, cache_path=None, jobs: int = 1
) -> tuple[list[FileSummary], FlowStats]:
    """Summarize every file under ``paths``, via the cache when possible.

    Returns the summaries in sorted-path order plus a :class:`FlowStats`
    describing what had to be re-indexed.
    """
    from repro.parallel.pool import parallel_map

    files = iter_python_files(paths)
    stats = FlowStats(total_files=len(files))

    sources: dict[str, str] = {}
    modules: dict[str, str] = {}  # module -> path
    module_of: dict[str, str] = {}
    for path in files:
        key = path.as_posix()
        sources[key] = path.read_text(encoding="utf-8")
        module_of[key] = module_name(path)
        modules[module_of[key]] = key

    cache = FlowCache(cache_path).load() if cache_path is not None else None

    reused: dict[str, FileSummary] = {}
    to_index: list[str] = []
    if cache is None:
        to_index = list(sources)
    else:
        for key, source in sources.items():
            summary = cache.cached_summary(key, content_hash(source))
            if summary is None:
                to_index.append(key)
            else:
                reused[key] = summary
        cone = _reverse_cone(set(to_index), reused, modules)
        for key in sorted(cone - set(to_index)):
            reused.pop(key)
            to_index.append(key)

    to_index.sort()
    fresh = parallel_map(
        summarize_file, [(key, module_of[key]) for key in to_index], jobs
    )
    stats.reindexed = list(to_index)
    stats.from_cache = len(reused)

    summaries = {key: summary for key, summary in reused.items()}
    for summary in fresh:
        summaries[summary.path] = summary
    ordered = [summaries[key] for key in sorted(summaries)]

    if cache is not None:
        cache.save(ordered)
    return ordered, stats
