"""Action-selection policy tests (UCT and ε-greedy, Section 6.1)."""

import math
import random
from collections import Counter

import pytest

from repro.catalog import Index
from repro.core.node import TreeNode
from repro.core.selection import BoltzmannPolicy, EpsilonGreedyPriorPolicy, UCTPolicy


@pytest.fixture
def actions(star_schema):
    fact = star_schema.table("fact")
    return [Index.build(fact, [c]) for c in ("fk1", "fk2", "cat", "val")]


class TestUCT:
    def test_unvisited_scores_infinite(self, actions):
        node = TreeNode.create(frozenset(), actions)
        node.visits = 1
        assert UCTPolicy().score(node, actions[0]) == math.inf

    def test_unvisited_selected_first(self, actions):
        node = TreeNode.create(frozenset(), actions)
        node.update(actions[0], 0.9)
        rng = random.Random(0)
        for _ in range(20):
            chosen = UCTPolicy().select(node, rng)
            assert chosen != actions[0] or all(
                node.stats[a].visits > 0 for a in actions
            )

    def test_score_formula(self, actions):
        node = TreeNode.create(frozenset(), actions)
        for _ in range(3):
            node.update(actions[0], 0.6)
        node.update(actions[1], 0.2)
        policy = UCTPolicy(exploration=math.sqrt(2))
        expected = 0.6 + math.sqrt(2) * math.sqrt(math.log(4) / 3)
        assert policy.score(node, actions[0]) == pytest.approx(expected)

    def test_exploitation_with_zero_lambda(self, actions):
        node = TreeNode.create(frozenset(), actions)
        for action, reward in zip(actions, (0.1, 0.9, 0.3, 0.2)):
            node.update(action, reward)
        policy = UCTPolicy(exploration=0.0)
        assert policy.select(node, random.Random(0)) == actions[1]

    def test_exploration_bonus_prefers_rarely_visited(self, actions):
        node = TreeNode.create(frozenset(), actions)
        # Same Q, very different visit counts.
        for _ in range(100):
            node.update(actions[0], 0.5)
        node.update(actions[1], 0.5)
        node.update(actions[2], 0.5)
        node.update(actions[3], 0.5)
        policy = UCTPolicy(exploration=1.0)
        chosen = policy.select(node, random.Random(0))
        assert chosen != actions[0]

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            UCTPolicy(exploration=-1.0)


class TestEpsilonGreedyPrior:
    def test_proportional_sampling(self, actions):
        node = TreeNode.create(
            frozenset(), actions, {actions[0]: 0.8, actions[1]: 0.2}
        )
        rng = random.Random(7)
        counts = Counter(
            EpsilonGreedyPriorPolicy().select(node, rng) for _ in range(2000)
        )
        # Eq. 6: Pr(a0) = 0.8, Pr(a1) = 0.2, others 0.
        assert counts[actions[0]] > counts[actions[1]] > 0
        assert counts[actions[2]] == 0
        assert counts[actions[0]] / 2000 == pytest.approx(0.8, abs=0.05)

    def test_uniform_when_no_signal(self, actions):
        node = TreeNode.create(frozenset(), actions)
        rng = random.Random(3)
        counts = Counter(
            EpsilonGreedyPriorPolicy().select(node, rng) for _ in range(2000)
        )
        assert len(counts) == len(actions)

    def test_observed_rewards_override_priors(self, actions):
        node = TreeNode.create(frozenset(), actions, {actions[0]: 0.9})
        # Visiting the prior-favoured action reveals it is bad.
        for _ in range(5):
            node.update(actions[0], 0.0)
        node.update(actions[1], 0.9)
        rng = random.Random(11)
        counts = Counter(
            EpsilonGreedyPriorPolicy().select(node, rng) for _ in range(500)
        )
        assert counts[actions[1]] > counts[actions[0]]


class TestBoltzmann:
    def test_greedier_at_low_temperature(self, actions):
        node = TreeNode.create(frozenset(), actions)
        node.update(actions[0], 1.0)
        node.update(actions[1], 0.5)
        node.update(actions[2], 0.2)
        node.update(actions[3], 0.1)
        rng = random.Random(5)
        cold = Counter(
            BoltzmannPolicy(temperature=0.01).select(node, rng) for _ in range(300)
        )
        assert cold[actions[0]] >= 295

    def test_uniform_at_high_temperature(self, actions):
        node = TreeNode.create(frozenset(), actions)
        node.update(actions[0], 1.0)
        node.update(actions[1], 0.0)
        rng = random.Random(5)
        hot = Counter(
            BoltzmannPolicy(temperature=100.0).select(node, rng) for _ in range(2000)
        )
        assert all(count > 300 for count in hot.values())

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            BoltzmannPolicy(temperature=0.0)
