"""Configuration-independent query preparation.

Everything about a query that does *not* depend on the index configuration —
per-access selectivities, output cardinalities, the join order, per-edge join
selectivities — is computed once here and cached. A what-if call then only
has to price access paths and join operators against the configuration,
which keeps thousands of what-if calls per tuning session cheap.

Fixing the join order independently of the configuration also gives the cost
model an exact *monotonicity* guarantee (the paper's Assumption 1): adding
indexes can only add plan options to a fixed operator skeleton, so the
minimum cost never increases.

Beyond the structural facts, a prepared query carries two kinds of
performance state maintained by the cost model:

* *cost constants* — configuration-independent arithmetic (heap-scan price,
  B-tree descent height, per-step hash-join fixed terms, the sort/group
  stage price) hoisted out of the per-call pricing loop by
  :func:`repro.optimizer.cost_model.attach_cost_constants`;
* *memo tables* — per-(access, index) access-path options and per-(join
  step, index) INLJ prices, filled lazily on first use so repeated what-if
  calls reduce to minima over precomputed numbers.

It also knows which indexes are *relevant* to the query
(:func:`index_is_relevant`): an index that can produce no access option, no
INLJ probe, and no sort avoidance cannot change the query's plan or cost,
so what-if cache keys can safely be normalised to the relevant subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.catalog import Index, Schema, Table
from repro.optimizer import selectivity as sel
from repro.workload.analysis import BoundJoin, BoundQuery, PredicateKind, TableAccess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cost_model imports us)
    from repro.optimizer.cost_model import CostModelParams, _AccessOption


@dataclass(slots=True)
class PreparedAccess:
    """Precomputed facts about one table access.

    Attributes:
        binding: The access binding (alias).
        table: Catalog table object.
        local_selectivity: Product of all filter-predicate selectivities.
        equality_selectivity: Per-column combined selectivity of EQUALITY
            predicates (seekable as exact key matches).
        range_selectivity: Per-column combined selectivity of RANGE
            predicates (seekable as the closing seek column).
        residual_selectivity: Combined selectivity of RESIDUAL predicates
            (never seekable).
        required_columns: Columns an index must carry to cover this access.
        output_rows: Estimated rows surviving all filters.
        filter_count: Number of filter predicates (costed as CPU work).
        heap_option: The always-available heap-scan access option, priced at
            prepare time (cost constant, owned by the cost model).
        descend_cost: B-tree descent price for this table's cardinality
            (cost constant, owned by the cost model).
        option_cache: Per-index memo of access-path options (``None`` when
            the index yields no option for this access).
    """

    binding: str
    table: Table
    local_selectivity: float
    equality_selectivity: dict[str, float]
    range_selectivity: dict[str, float]
    residual_selectivity: float
    required_columns: frozenset[str]
    output_rows: float
    filter_count: int
    heap_option: "_AccessOption | None" = None
    descend_cost: float = 0.0
    option_cache: dict[Index, "_AccessOption | None"] = field(default_factory=dict)


@dataclass(slots=True)
class PreparedJoinStep:
    """One step of the left-deep join pipeline.

    Attributes:
        access: The inner (newly joined) table access.
        join_columns: Inner-side join columns connecting this access to the
            already-joined prefix (usually one; multiple for multi-edge
            connections).
        edge_selectivity: Product of join selectivities of the connecting
            edges.
        output_rows: Estimated cardinality after this join step.
        outer_rows: Estimated cardinality *entering* this step (the prefix's
            output) — fixed by the configuration-independent join order.
        hash_fixed_cost: Configuration-independent part of the hash-join
            price (build + probe + output CPU terms), a cost constant.
        probe_cache: Per-index memo of the *total* INLJ price of this step
            (``None`` when the index cannot serve the probe).
    """

    access: PreparedAccess
    join_columns: tuple[str, ...]
    edge_selectivity: float
    output_rows: float
    outer_rows: float = 0.0
    hash_fixed_cost: float = 0.0
    probe_cache: dict[Index, float | None] = field(default_factory=dict)


@dataclass(slots=True)
class PreparedQuery:
    """A query fully prepared for configuration costing.

    Attributes:
        qid: Source query id.
        accesses: All prepared accesses keyed by binding.
        first_binding: The access opening the left-deep pipeline.
        join_steps: Remaining accesses in join order.
        final_rows: Estimated output cardinality before grouping.
        order_columns: For single-access queries, the ``(column, ...)`` an
            access path must be keyed on (as a prefix) to avoid the sort;
            empty when no sort is needed or sort avoidance is impossible.
        sort_rows: Rows entering the sort/group stage (0 when none needed).
        aggregate_only: True when the stage serves only a GROUP BY (no
            ORDER BY), so a hash aggregate can replace the sort.
        params: The cost-model parameters the cost constants were computed
            with (``None`` until a cost model attaches them).
        stage_cost: Price of the sort/group stage (cost constant).
        relevance: Per-index memo of :func:`index_is_relevant`.
    """

    qid: str
    accesses: dict[str, PreparedAccess]
    first_binding: str
    join_steps: list[PreparedJoinStep]
    final_rows: float
    order_columns: tuple[str, ...] = ()
    sort_rows: float = 0.0
    aggregate_only: bool = False
    params: "CostModelParams | None" = None
    stage_cost: float = 0.0
    relevance: dict[Index, bool] = field(default_factory=dict)

    @property
    def bindings(self) -> list[str]:
        return list(self.accesses)

    def relevant_subset(self, configuration: frozenset[Index]) -> frozenset[Index]:
        """``configuration ∩ relevant(q)`` — the indexes that can affect cost.

        Returns ``configuration`` itself (same object) when every index is
        relevant, so callers can detect collapse with an identity check and
        fully-relevant keys avoid a rebuild.
        """
        memo = self.relevance
        dropped = False
        kept: list[Index] = []
        for index in configuration:
            relevant = memo.get(index)
            if relevant is None:
                relevant = index_is_relevant(self, index)
                memo[index] = relevant
            if relevant:
                kept.append(index)
            else:
                dropped = True
        if not dropped:
            return configuration
        return frozenset(kept)


def index_is_relevant(prepared: PreparedQuery, index: Index) -> bool:
    """Whether ``index`` can produce any plan option for ``prepared``.

    Mirrors the cost model's option generation exactly — an index is
    relevant iff at least one of these holds:

    * *seekable*: some access on its table carries an equality or range
      predicate on the index's leading key column;
    * *covering*: it carries every column some access on its table requires
      (enabling an index-only scan);
    * *probe-qualifying*: for some join step on its table, a join column
      appears in its key with every earlier key column bound by an equality
      predicate (enabling an index-nested-loop probe).

    When none holds, the index contributes no option to any minimum the
    model takes, so ``cost(q, C) == cost(q, C − {index})`` exactly; dropping
    it from cache keys is semantics-preserving.
    """
    table_name = index.table
    first_key = index.key_columns[0]
    for access in prepared.accesses.values():
        if access.table.name != table_name:
            continue
        if (
            first_key in access.equality_selectivity
            or first_key in access.range_selectivity
        ):
            return True
        if index.covers(access.required_columns):
            return True
    for step in prepared.join_steps:
        access = step.access
        if access.table.name != table_name:
            continue
        for column in index.key_columns:
            if column in step.join_columns:
                return True
            if column not in access.equality_selectivity:
                break
    return False


def _prepare_access(schema: Schema, access: TableAccess) -> PreparedAccess:
    table = schema.table(access.table)
    equality: dict[str, float] = {}
    ranges: dict[str, float] = {}
    residual = 1.0
    local = 1.0
    for predicate in access.filters:
        column = table.column(predicate.column)
        s = sel.predicate_selectivity(column, predicate)
        local *= s
        if predicate.kind is PredicateKind.EQUALITY:
            equality[predicate.column] = equality.get(predicate.column, 1.0) * s
        elif predicate.kind is PredicateKind.RANGE:
            ranges[predicate.column] = ranges.get(predicate.column, 1.0) * s
        else:
            residual *= s
    local = max(local, sel.MIN_SELECTIVITY)
    return PreparedAccess(
        binding=access.binding,
        table=table,
        local_selectivity=local,
        equality_selectivity=equality,
        range_selectivity=ranges,
        residual_selectivity=residual,
        required_columns=frozenset(access.required_columns),
        output_rows=max(1.0, table.row_count * local),
        filter_count=len(access.filters),
    )


def _choose_join_order(
    accesses: dict[str, PreparedAccess], joins: list[BoundJoin]
) -> list[str]:
    """Greedy smallest-cardinality-first left-deep order.

    Starts from the access with the fewest estimated output rows; at each
    step prefers bindings connected to the current prefix by a join edge
    (falling back to a cross product only when the join graph is
    disconnected), picking the connected binding with the fewest rows.
    """
    remaining = set(accesses)
    order: list[str] = []
    current = min(remaining, key=lambda b: (accesses[b].output_rows, b))
    order.append(current)
    remaining.discard(current)
    joined = {current}
    while remaining:
        connected = {
            join.other_binding(binding)
            for join in joins
            for binding in joined
            if join.touches(binding) and join.other_binding(binding) in remaining
        }
        pool = connected or remaining
        nxt = min(pool, key=lambda b: (accesses[b].output_rows, b))
        order.append(nxt)
        remaining.discard(nxt)
        joined.add(nxt)
    return order


def prepare_query(schema: Schema, bound: BoundQuery) -> PreparedQuery:
    """Prepare ``bound`` for repeated configuration costing.

    Cost constants are attached lazily by the first cost model that prices
    the query (see :func:`repro.optimizer.cost_model.attach_cost_constants`),
    so preparation itself stays parameter-free.
    """
    accesses = {
        binding: _prepare_access(schema, access)
        for binding, access in bound.accesses.items()
    }
    order = _choose_join_order(accesses, bound.joins)

    steps: list[PreparedJoinStep] = []
    joined = {order[0]}
    rows = accesses[order[0]].output_rows
    for binding in order[1:]:
        access = accesses[binding]
        join_columns: list[str] = []
        edge_selectivity = 1.0
        for join in bound.joins:
            if not join.touches(binding):
                continue
            other = join.other_binding(binding)
            if other not in joined:
                continue
            _, inner_column = join.side(binding)
            if inner_column not in join_columns:
                join_columns.append(inner_column)
            other_table, other_column = join.side(other)
            edge_selectivity *= sel.join_selectivity(
                accesses[other].table.column(other_column),
                access.table.column(inner_column),
            )
        outer_rows = rows
        rows = max(1.0, rows * access.output_rows * edge_selectivity)
        steps.append(
            PreparedJoinStep(
                access=access,
                join_columns=tuple(join_columns),
                edge_selectivity=edge_selectivity,
                output_rows=rows,
                outer_rows=outer_rows,
            )
        )
        joined.add(binding)

    needs_sort = bool(bound.group_by or bound.order_by)
    order_columns: tuple[str, ...] = ()
    if needs_sort and len(accesses) == 1:
        # Sort avoidance is modelled for single-access queries: an index
        # keyed on the grouping/ordering columns delivers rows pre-ordered.
        wanted = bound.group_by or [(b, c) for b, c, _ in bound.order_by]
        only_binding = order[0]
        if all(binding == only_binding for binding, _ in wanted):
            order_columns = tuple(column for _, column in wanted)

    return PreparedQuery(
        qid=bound.qid,
        accesses=accesses,
        first_binding=order[0],
        join_steps=steps,
        final_rows=rows,
        order_columns=order_columns,
        sort_rows=rows if needs_sort else 0.0,
        aggregate_only=bool(bound.group_by) and not bound.order_by,
    )
