"""Search-tree nodes (the CreateNode bookkeeping of Algorithm 3).

Each node represents a state (configuration). Per outgoing action it keeps
``n(s, a)`` (visits) and ``Q̂(s, a)`` (average observed return, a fraction in
``[0, 1]``), plus the prior used to initialise ``Q̂`` before the first visit
(Section 6.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog import Index


@dataclass
class ActionStats:
    """Bookkeeping for one action of one node."""

    prior: float = 0.0
    visits: int = 0
    total_return: float = 0.0

    @property
    def q_value(self) -> float:
        """``Q̂(s, a)``: observed mean return, or the prior before any visit."""
        if self.visits == 0:
            return self.prior
        return self.total_return / self.visits

    def update(self, reward: float) -> None:
        self.visits += 1
        self.total_return += reward


@dataclass
class TreeNode:
    """One state in the MCTS search tree.

    Attributes:
        state: The configuration this node represents.
        actions: Available actions in canonical order (fixed at creation).
        stats: Per-action statistics, parallel to ``actions``.
        children: Expanded successors keyed by action.
        visits: ``N(s)`` — times an episode passed through this node.
        rolled_out: Whether the node has had its first (rollout) visit; a
            leaf that has not been rolled out is simulated, one that has is
            expanded (Algorithm 3's "visited before" test).
    """

    state: frozenset[Index]
    actions: list[Index]
    stats: dict[Index, ActionStats] = field(default_factory=dict)
    children: dict[Index, "TreeNode"] = field(default_factory=dict)
    visits: int = 0
    rolled_out: bool = False

    @classmethod
    def create(
        cls,
        state: frozenset[Index],
        actions: list[Index],
        priors: dict[Index, float] | None = None,
    ) -> "TreeNode":
        """CreateNode: initialise action bookkeeping with optional priors."""
        node = cls(state=state, actions=list(actions))
        for action in node.actions:
            prior = priors.get(action, 0.0) if priors else 0.0
            node.stats[action] = ActionStats(prior=max(0.0, prior))
        return node

    @property
    def is_leaf(self) -> bool:
        """A node with no expanded children is a tree leaf."""
        return not self.children

    @property
    def is_terminal(self) -> bool:
        """Terminal states have no actions at all."""
        return not self.actions

    def q_value(self, action: Index) -> float:
        return self.stats[action].q_value

    def action_visits(self, action: Index) -> int:
        return self.stats[action].visits

    def update(self, action: Index, reward: float) -> None:
        """Fold one observed episode return into this node's statistics."""
        self.visits += 1
        self.stats[action].update(reward)

    def best_action_by_q(self) -> Index | None:
        """The action with the highest ``Q̂`` (ties broken by order)."""
        best: Index | None = None
        best_q = -1.0
        for action in self.actions:
            q = self.stats[action].q_value
            if q > best_q:
                best, best_q = action, q
        return best

    def subtree_size(self) -> int:
        """Number of nodes in this subtree (diagnostics)."""
        return 1 + sum(child.subtree_size() for child in self.children.values())
