"""Cross-cutting pipeline properties over every built-in workload.

These are the "does the whole thing hang together" checks: every workload
parses, binds, generates candidates, costs monotonically, and every tuner
honours the budget contract on it.
"""

import pytest

from repro.config import TuningConstraints
from repro.optimizer.whatif import WhatIfOptimizer
from repro.tuners import MCTSTuner, TwoPhaseGreedyTuner
from repro.workload import CandidateGenerator
from repro.workload.suites import available_workloads, get_workload

_SCALES = {"real_d": 0.05, "real_m": 0.05}


@pytest.fixture(scope="module", params=available_workloads())
def any_workload(request):
    return get_workload(request.param, scale=_SCALES.get(request.param, 0.1))


class TestEveryWorkload:
    def test_candidates_nonempty_and_valid(self, any_workload):
        candidates = CandidateGenerator(any_workload.schema).for_workload(
            any_workload
        )
        assert len(candidates) >= 20
        for index in candidates[:50]:
            table = any_workload.schema.table(index.table)
            for column in index.all_columns:
                assert table.has_column(column)

    def test_costs_positive_and_improvable(self, any_workload):
        optimizer = WhatIfOptimizer(any_workload)
        candidates = CandidateGenerator(any_workload.schema).for_workload(
            any_workload
        )
        baseline = optimizer.empty_workload_cost()
        assert baseline > 0
        configured = optimizer.true_workload_cost(frozenset(candidates))
        assert configured < baseline  # some index helps somewhere

    def test_mcts_budget_contract(self, any_workload):
        result = MCTSTuner(seed=0).tune(
            any_workload,
            budget=40,
            constraints=TuningConstraints(max_indexes=5),
        )
        assert result.calls_used <= 40
        assert len(result.configuration) <= 5
        assert 0.0 <= result.true_improvement() <= 100.0

    def test_two_phase_budget_contract(self, any_workload):
        result = TwoPhaseGreedyTuner().tune(
            any_workload,
            budget=40,
            constraints=TuningConstraints(max_indexes=5),
        )
        assert result.calls_used <= 40
        assert result.true_improvement() >= 0.0

    def test_estimated_improvement_conservative(self, any_workload):
        """Derived-cost estimates never overstate the true improvement."""
        result = MCTSTuner(seed=1).tune(
            any_workload,
            budget=30,
            constraints=TuningConstraints(max_indexes=5),
        )
        assert result.estimated_improvement <= result.true_improvement() + 1e-6
