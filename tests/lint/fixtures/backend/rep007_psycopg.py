"""REP007 fixture: raw psycopg use outside ``repro/backend/dbms``.

The driver is an optional extra; only ``repro.backend.dbms`` may import
it (through ``require_psycopg``, which turns absence into an actionable
error). Anywhere else — including the rest of the backend package — a
raw import breaks the psycopg-free replay guarantee.
"""

import psycopg  # repro-lint-expect: REP007
from psycopg import OperationalError  # repro-lint-expect: REP007


def raw_connection(dsn):
    return psycopg.connect(dsn)  # repro-lint-expect: REP007


def suppressed(dsn):
    return psycopg.connect(dsn)  # repro-lint: off[REP007]


def gated_connection(dsn):
    # The sanctioned pattern: the gate raises BackendUnavailableError
    # with the install hint when the driver is missing.
    psycopg = require_psycopg()
    return psycopg.connect(dsn)
