"""Production-style tuning: compress a large workload, tune under a
wall-clock budget.

Mirrors how a DTA-style tool would drive the library: the operator specifies
minutes, the library maps them to a what-if call budget (Section 8's
proposed mapping); workload compression (footnote 5) shrinks a 99-query
workload to a handful of weighted representatives first, making the
budget go further.

Run:
    python examples/time_budget_and_compression.py
"""

from repro import (
    MCTSTuner,
    TimeBudgetedTuner,
    TuningConstraints,
    WhatIfOptimizer,
    WorkloadCompressor,
    get_workload,
)
from repro.eval.timemodel import WhatIfTimeModel


def main() -> None:
    workload = get_workload("tpcds")
    model = WhatIfTimeModel(workload)
    minutes = 12.0
    print(
        f"{workload.name}: {len(workload)} queries, "
        f"~{model.mean_call_seconds:.2f}s per what-if call, "
        f"time budget {minutes:.0f} min"
    )

    constraints = TuningConstraints(max_indexes=10)
    adapter = TimeBudgetedTuner(MCTSTuner(seed=0), time_model=model)

    # Tune the full workload under the time budget.
    direct = adapter.tune_for_minutes(workload, minutes, constraints=constraints)
    print(
        f"\nfull workload:      budget={direct.budget} calls, "
        f"improvement={direct.true_improvement():.1f}%"
    )

    # Compress first, then tune the representatives with the same budget.
    compressed = WorkloadCompressor(target_queries=20).compress(workload)
    compressed_adapter = TimeBudgetedTuner(MCTSTuner(seed=0))
    result = compressed_adapter.tune_for_minutes(
        compressed, minutes, constraints=constraints
    )
    # Evaluate the compressed recommendation against the FULL workload.
    evaluator = WhatIfOptimizer(workload)
    baseline = evaluator.empty_workload_cost()
    cost = evaluator.true_workload_cost(result.configuration)
    transferred = (1 - cost / baseline) * 100
    print(
        f"compressed (20 q):  budget={result.budget} calls, "
        f"improvement on full workload={transferred:.1f}%"
    )
    print(
        f"\n(compression trades a little quality for a {len(workload)}->"
        f"{len(compressed)} reduction in per-round evaluation cost)"
    )


if __name__ == "__main__":
    main()
