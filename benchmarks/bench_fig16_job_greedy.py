"""E-F16 — Figure 16: JOB — budget-aware greedy variants vs MCTS."""

from conftest import run_once

from repro.eval.experiments import greedy_comparison


def test_fig16_job_greedy(benchmark, settings, archive):
    records, text = run_once(benchmark, lambda: greedy_comparison("job", settings))
    archive("fig16_job_greedy", text, records=records)
    assert records, "experiment produced no records"
    tuners = {record.tuner for record in records}
    assert "mcts" in tuners or any("greedy" in t or "prior" in t or "uct" in t for t in tuners)
    assert all(record.calls_used <= record.budget for record in records)
