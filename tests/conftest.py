"""Shared fixtures: a small star schema, a deterministic toy workload, and
session-cached benchmark workloads."""

from __future__ import annotations

import os

import pytest

from repro.catalog import SchemaBuilder
from repro.config import TuningConstraints
from repro.workload import CandidateGenerator
from repro.workload.query import Query, Workload
from repro.workload.suites.toy import TOY_PROFILE, TOY_SEED, toy_star_schema


def pytest_collection_modifyitems(config, items):
    """Skip ``requires_postgres`` tests unless a live DSN is configured."""
    if os.environ.get("REPRO_PG_DSN"):
        return
    skip = pytest.mark.skip(reason="REPRO_PG_DSN not set; no live Postgres")
    for item in items:
        if "requires_postgres" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def star_schema():
    """A 1M-row fact table with two dimensions — the standard test schema.

    Delegates to :func:`repro.workload.suites.toy.toy_star_schema` (a
    fresh build, not the registry cache) so the fixtures and the runtime
    ``toy`` suite can never drift apart.
    """
    return toy_star_schema()


@pytest.fixture(scope="session")
def toy_workload(star_schema):
    """A deterministic 12-query synthesized workload over the star schema."""
    from repro.workload.synthesis import WorkloadSynthesizer

    return WorkloadSynthesizer(star_schema, TOY_PROFILE, seed=TOY_SEED).generate("toy")


@pytest.fixture(scope="session")
def toy_candidates(star_schema, toy_workload):
    return CandidateGenerator(star_schema).for_workload(toy_workload)


@pytest.fixture(scope="session")
def figure3_schema():
    """The R(a, b) / S(c, d) schema of the paper's Figure 3 example."""
    return (
        SchemaBuilder("figure3")
        .table("R", rows=100_000)
        .column("a", distinct=1_000, lo=0, hi=1_000)
        .column("b", distinct=5_000)
        .table("S", rows=200_000)
        .column("c", distinct=5_000)
        .column("d", distinct=2_000, lo=0, hi=2_000)
        .foreign_key("R", "b", "S", "c")
        .build()
    )


@pytest.fixture(scope="session")
def figure3_workload(figure3_schema):
    """The two-query workload of Figure 3."""
    q1 = Query(
        qid="Q1",
        sql="SELECT a, d FROM R, S WHERE R.b = S.c AND R.a = 5 AND S.d > 200",
    )
    q2 = Query(qid="Q2", sql="SELECT a FROM R, S WHERE R.b = S.c AND R.a = 40")
    return Workload(name="figure3", schema=figure3_schema, queries=[q1, q2])


@pytest.fixture
def small_constraints():
    return TuningConstraints(max_indexes=5)


@pytest.fixture(scope="session")
def tpch():
    from repro.workload.suites.tpch import tpch_workload

    return tpch_workload()
