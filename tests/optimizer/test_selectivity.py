"""Selectivity estimator tests."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog import Column, ColumnStats, ColumnType
from repro.optimizer import selectivity as sel
from repro.workload.analysis import BoundPredicate, PredicateKind


def make_column(distinct=100, lo=0.0, hi=100.0, nulls=0.0, ctype=ColumnType.INTEGER):
    return Column(
        name="c",
        ctype=ctype,
        stats=ColumnStats(
            distinct_count=distinct, min_value=lo, max_value=hi, null_fraction=nulls
        ),
    )


def predicate(op, values=(), kind=PredicateKind.EQUALITY):
    return BoundPredicate(
        binding="t", table="t", column="c", kind=kind, op=op, values=tuple(values)
    )


class TestEquality:
    def test_one_over_ndv(self):
        assert sel.equality_selectivity(make_column(distinct=100)) == pytest.approx(0.01)

    def test_nulls_reduce_selectivity(self):
        with_nulls = sel.equality_selectivity(make_column(distinct=10, nulls=0.5))
        without = sel.equality_selectivity(make_column(distinct=10))
        assert with_nulls == pytest.approx(without / 2)

    def test_floor_applied(self):
        assert sel.equality_selectivity(make_column(distinct=10**9)) >= sel.MIN_SELECTIVITY


class TestRange:
    def test_less_than_interpolates(self):
        assert sel.range_selectivity(make_column(), "<", 25.0) == pytest.approx(0.25)

    def test_greater_than_interpolates(self):
        assert sel.range_selectivity(make_column(), ">", 25.0) == pytest.approx(0.75)

    def test_out_of_domain_clamps(self):
        assert sel.range_selectivity(make_column(), "<", -50.0) == sel.MIN_SELECTIVITY
        assert sel.range_selectivity(make_column(), "<", 500.0) == pytest.approx(1.0)

    def test_non_numeric_uses_default(self):
        column = make_column(ctype=ColumnType.VARCHAR)
        assert sel.range_selectivity(column, "<", 10.0) == pytest.approx(1 / 3)


class TestBetween:
    def test_interpolates_width(self):
        assert sel.between_selectivity(make_column(), 10, 30) == pytest.approx(0.2)

    def test_inverted_range_is_floor(self):
        assert sel.between_selectivity(make_column(), 30, 10) == sel.MIN_SELECTIVITY

    def test_clipped_to_domain(self):
        assert sel.between_selectivity(make_column(), -100, 50) == pytest.approx(0.5)


class TestInList:
    def test_k_over_ndv(self):
        assert sel.in_selectivity(make_column(distinct=100), 5) == pytest.approx(0.05)

    def test_capped_at_one(self):
        assert sel.in_selectivity(make_column(distinct=2), 10) == 1.0


class TestLike:
    def test_longer_prefix_more_selective(self):
        column = make_column(ctype=ColumnType.VARCHAR, distinct=10**6)
        short = sel.like_prefix_selectivity(column, "a%")
        long = sel.like_prefix_selectivity(column, "abcd%")
        assert long < short

    def test_leading_wildcard_default(self):
        column = make_column(ctype=ColumnType.VARCHAR)
        assert sel.like_prefix_selectivity(column, "%x") == pytest.approx(
            sel.WILDCARD_LIKE_SELECTIVITY
        )


class TestNull:
    def test_is_null_uses_fraction(self):
        assert sel.null_selectivity(make_column(nulls=0.3), negated=False) == pytest.approx(0.3)

    def test_is_not_null(self):
        assert sel.null_selectivity(make_column(nulls=0.3), negated=True) == pytest.approx(0.7)


class TestDispatch:
    @pytest.mark.parametrize(
        "op,values",
        [
            ("=", (5.0,)),
            ("IN", (1.0, 2.0)),
            ("BETWEEN", (1.0, 5.0)),
            ("<", (5.0,)),
            (">", (5.0,)),
            ("<=", (5.0,)),
            (">=", (5.0,)),
            ("LIKE", ("ab%",)),
            ("NOT LIKE", ("%x",)),
            ("IS NULL", ()),
            ("IS NOT NULL", ()),
            ("<>", (5.0,)),
        ],
    )
    def test_all_ops_in_unit_range(self, op, values):
        result = sel.predicate_selectivity(make_column(nulls=0.1), predicate(op, values))
        assert sel.MIN_SELECTIVITY <= result <= 1.0

    def test_neq_complements_equality(self):
        column = make_column(distinct=100)
        eq = sel.predicate_selectivity(column, predicate("=", (5.0,)))
        neq = sel.predicate_selectivity(column, predicate("<>", (5.0,)))
        assert eq + neq == pytest.approx(1.0)


class TestJoin:
    def test_uses_larger_ndv(self):
        left = make_column(distinct=100)
        right = make_column(distinct=1_000)
        assert sel.join_selectivity(left, right) == pytest.approx(0.001)

    def test_symmetric(self):
        left = make_column(distinct=100)
        right = make_column(distinct=1_000)
        assert sel.join_selectivity(left, right) == sel.join_selectivity(right, left)


class TestPropertyBased:
    @given(
        distinct=st.integers(min_value=1, max_value=10**9),
        nulls=st.floats(min_value=0.0, max_value=0.99),
    )
    def test_equality_always_valid(self, distinct, nulls):
        column = make_column(distinct=distinct, nulls=nulls)
        result = sel.equality_selectivity(column)
        assert sel.MIN_SELECTIVITY <= result <= 1.0

    @given(
        value=st.floats(min_value=-1e6, max_value=1e6),
        op=st.sampled_from(["<", ">", "<=", ">="]),
    )
    def test_range_always_valid(self, value, op):
        result = sel.range_selectivity(make_column(), op, value)
        assert sel.MIN_SELECTIVITY <= result <= 1.0

    @given(
        lo=st.floats(min_value=-1e3, max_value=1e3),
        width=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_between_monotone_in_width(self, lo, width):
        column = make_column()
        narrow = sel.between_selectivity(column, lo, lo + width / 2)
        wide = sel.between_selectivity(column, lo, lo + width)
        assert wide >= narrow
