"""Every example script must run cleanly (small budgets keep them quick)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "improvement" in result.stdout
        assert "CREATE INDEX" in result.stdout

    def test_custom_workload(self):
        result = run_example("custom_workload.py")
        assert result.returncode == 0, result.stderr
        assert "plan with recommended configuration" in result.stdout

    def test_compare_tuners_small(self):
        result = run_example("compare_tuners.py", "tpch", "60", "5")
        assert result.returncode == 0, result.stderr
        assert "mcts" in result.stdout
        assert "vanilla_greedy" in result.stdout

    def test_storage_constraint(self):
        result = run_example("storage_constraint.py")
        assert result.returncode == 0, result.stderr
        assert "storage cap" in result.stdout
