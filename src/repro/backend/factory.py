"""Backend registry and factory, mirroring :func:`repro.budget.policy.build_policy`.

Consumers never construct a concrete backend class: they hold a
:class:`BackendSpec` — a small frozen dataclass of primitives that pickles
across the experiment process pool — and exchange it for a live
:class:`~repro.backend.base.CostBackend` via :func:`build_backend`. The
session layer (:meth:`repro.tuners.base.TuningSession`), the eval grid, the
parallel workers, and the CLI all resolve backends through here, so
registering a new engine (say a real-DBMS EXPLAIN backend) is one entry in
:data:`BACKENDS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.backend.analytic import AnalyticBackend
from repro.backend.noisy import NoisyBackend
from repro.backend.postgres import PostgresBackend
from repro.backend.record import RecordingBackend
from repro.backend.replay import ReplayBackend
from repro.config import _BACKEND_NAMES, ReproConfig
from repro.exceptions import TuningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.base import CostBackend
    from repro.budget.events import EventLog
    from repro.budget.policy import BudgetPolicy
    from repro.optimizer.cost_model import CostModel
    from repro.workload.query import Workload

#: Registered backend classes by name.
BACKENDS: dict[str, type[AnalyticBackend]] = {
    AnalyticBackend.name: AnalyticBackend,
    NoisyBackend.name: NoisyBackend,
    RecordingBackend.name: RecordingBackend,
    ReplayBackend.name: ReplayBackend,
    PostgresBackend.name: PostgresBackend,
}

#: Backend names accepted by ``--backend`` and ``REPRO_BACKEND``.
BACKEND_NAMES: tuple[str, ...] = tuple(BACKENDS)

assert BACKEND_NAMES == _BACKEND_NAMES, "config.py name list drifted from registry"


@dataclass(frozen=True)
class BackendSpec:
    """A picklable description of a cost backend.

    Everything a worker process needs to rebuild the backend: plain
    primitives, no live objects. Equal specs build behaviourally identical
    backends (the noisy perturbation stream is keyed on ``noise_seed``, not
    on object identity), which is what makes parallel grid cells
    reproducible.

    Attributes:
        name: Registered backend name (see :data:`BACKEND_NAMES`).
        trace_path: Trace file for the record/replay backends (required by
            both; optional recording destination for the postgres backend;
            ignored by the others).
        noise: Noise level σ for the noisy backend.
        noise_seed: Perturbation-stream seed for the noisy backend.
        pg_dsn: Connection string for the postgres backend. ``None`` defers
            to ``REPRO_PG_DSN`` at build time, so a spec pickled on the
            driver can resolve the DSN in the worker's environment.
        pg_schema: Optional schema (``search_path``) for the postgres
            backend's tables.
        pricing_jobs: Concurrent pricing workers for the speculate-then-
            commit executor (1 = serial path; never affects results).
        whatif_cache: Persistent cross-session what-if cache directory
            (``None`` disables; never affects results).
    """

    name: str = "analytic"
    trace_path: str | None = None
    noise: float = 0.1
    noise_seed: int = 0
    pg_dsn: str | None = None
    pg_schema: str | None = None
    pricing_jobs: int = 1
    whatif_cache: str | None = None

    def __post_init__(self) -> None:
        if self.name not in BACKENDS:
            raise TuningError(
                f"unknown backend {self.name!r}; expected one of {BACKEND_NAMES}"
            )
        if self.name in ("record", "replay") and not self.trace_path:
            raise TuningError(
                f"backend {self.name!r} requires a trace path "
                "(--backend-trace / REPRO_BACKEND_TRACE)"
            )
        if self.noise < 0:
            raise TuningError(f"noise must be non-negative, got {self.noise}")
        if self.pricing_jobs < 1:
            raise TuningError(
                f"pricing_jobs must be at least 1, got {self.pricing_jobs}"
            )

    @classmethod
    def from_config(cls, config: ReproConfig) -> "BackendSpec":
        """The spec selected by a config's ``backend*``/``noise*`` knobs."""
        return cls(
            name=config.backend,
            trace_path=config.backend_trace,
            noise=config.noise,
            noise_seed=config.noise_seed,
            pg_dsn=config.pg_dsn,
            pg_schema=config.pg_schema,
            pricing_jobs=config.pricing_jobs,
            whatif_cache=config.whatif_cache,
        )


def resolve_spec(
    spec: "BackendSpec | str | None", config: ReproConfig | None = None
) -> BackendSpec:
    """Normalise a spec/name/None selection into a :class:`BackendSpec`.

    ``None`` defers entirely to the config (itself defaulting to
    :meth:`~repro.config.ReproConfig.from_env`, so ``REPRO_BACKEND`` et al.
    apply); a bare name keeps the config's trace/noise knobs.
    """
    if isinstance(spec, BackendSpec):
        return spec
    base = config or ReproConfig.from_env()
    if spec is None:
        return BackendSpec.from_config(base)
    return BackendSpec(
        name=spec,
        trace_path=base.backend_trace,
        noise=base.noise,
        noise_seed=base.noise_seed,
        pg_dsn=base.pg_dsn,
        pg_schema=base.pg_schema,
        pricing_jobs=base.pricing_jobs,
        whatif_cache=base.whatif_cache,
    )


def build_backend(
    spec: "BackendSpec | str | None",
    workload: "Workload",
    *,
    budget: int | None = None,
    policy: "BudgetPolicy | None" = None,
    config: ReproConfig | None = None,
    events: "EventLog | None" = None,
    cost_model: "CostModel | None" = None,
    normalize_cache: bool | None = None,
    pool_size: int | None = None,
    **backend_kwargs,
) -> "CostBackend":
    """Build the cost backend selected by ``spec`` for ``workload``.

    The keyword surface mirrors the
    :class:`~repro.optimizer.whatif.WhatIfOptimizer` constructor (budget
    *or* policy, engine knobs, event stream); backend-specific parameters
    (trace path, noise) come from the spec. Extra keyword arguments are
    forwarded to the backend constructor verbatim — this is how tests
    inject a fake ``connector`` into the postgres backend.
    """
    resolved = resolve_spec(spec, config)
    kwargs: dict = dict(
        budget=budget,
        cost_model=cost_model,
        normalize_cache=normalize_cache,
        pool_size=pool_size,
        pricing_jobs=resolved.pricing_jobs,
        whatif_cache=resolved.whatif_cache,
        config=config,
        policy=policy,
        events=events,
    )
    if resolved.name in ("record", "replay"):
        kwargs["trace_path"] = resolved.trace_path
    elif resolved.name == "noisy":
        kwargs["noise"] = resolved.noise
        kwargs["noise_seed"] = resolved.noise_seed
    elif resolved.name == "postgres":
        kwargs["pg_dsn"] = resolved.pg_dsn
        kwargs["pg_schema"] = resolved.pg_schema
        kwargs["trace_path"] = resolved.trace_path
    kwargs.update(backend_kwargs)
    return BACKENDS[resolved.name](workload, **kwargs)
