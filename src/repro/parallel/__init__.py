"""Parallel experiment execution with a deterministic merge.

The paper's evaluation grids — per workload, every (algorithm, K, B) cell
averaged over seeds — are embarrassingly parallel, and at full scale
(``REPRO_SCALE=1``) serial runs take hours. This package fans the
independent (tuner, K, B, seed) cells of
:class:`~repro.eval.runner.ExperimentRunner` out to worker processes and
merges the outcomes in deterministic grid order.

Determinism contract: a parallel run is **bit-identical** to the serial
one — same per-seed RNG streams (each cell is a self-contained tuning run
seeded in the parent), same :class:`~repro.eval.runner.RunRecord`
aggregation (workers ship scalar :class:`SeedOutcome` payloads, including
the full event stream and what-if counters, and the merge side runs the
same aggregation loop the serial path uses). Only wall-clock fields
(``seconds``, ``cost_seconds``) differ, because they measure time.

Entry points: ``ExperimentRunner(parallel=N)``, the ``REPRO_JOBS``
environment knob consumed by :mod:`repro.eval.experiments`, and the
``--jobs`` flags of the ``tune``/``eval`` CLI commands and the benchmark
suite.
"""

from repro.exceptions import ParallelExecutionError
from repro.parallel.executor import execute_specs
from repro.parallel.pool import parallel_map
from repro.parallel.spec import CellSpec, SeedOutcome
from repro.parallel.worker import run_seed, run_seed_with_result

__all__ = [
    "CellSpec",
    "ParallelExecutionError",
    "SeedOutcome",
    "execute_specs",
    "parallel_map",
    "run_seed",
    "run_seed_with_result",
]
