"""The registry REP105 walks; only *registered* classes are checked."""

from backend.bad import BadBackend
from backend.eager import EagerBackend, LazyBackend
from backend.good import FlexBackend, GoodBackend


class UnregisteredDraft:
    """Diverges from the protocol but is not registered — not checked."""

    def whatif_cost(self):
        return 0.0


BACKENDS = {
    "good": GoodBackend,
    "flex": FlexBackend,
    "bad": BadBackend,
    # Live-DBMS-shaped backends: both conform (REP105 silent); their
    # connection ownership is REP103's business, not the registry's.
    "eager": EagerBackend,
    "lazy": LazyBackend,
}
