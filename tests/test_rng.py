"""Seeded-RNG plumbing tests."""

import pytest

from repro.rng import DEFAULT_SEED, make_np_rng, make_rng, spawn_seeds


class TestMakeRng:
    def test_default_seed_reproducible(self):
        assert make_rng().random() == make_rng(DEFAULT_SEED).random()

    def test_explicit_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_numpy_variant(self):
        assert make_np_rng(5).random() == make_np_rng(5).random()


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_count(self):
        assert len(spawn_seeds(1, 7)) == 7

    def test_prefix_property(self):
        """Growing the count preserves the earlier seeds."""
        assert spawn_seeds(9, 3) == spawn_seeds(9, 5)[:3]

    def test_distinct_parents_distinct_children(self):
        assert spawn_seeds(1, 3) != spawn_seeds(2, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_zero_count(self):
        assert spawn_seeds(1, 0) == []
