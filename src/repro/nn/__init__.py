"""A tiny from-scratch NumPy neural substrate.

Supplies exactly what the No-DBA deep-Q baseline needs: a fully-connected
ReLU network trained with Adam on per-action TD targets, and a replay
buffer. CPU-only by construction, matching the paper's adapted comparison
protocol ("we only use CPU for training the DNN").
"""

from repro.nn.mlp import MLP
from repro.nn.replay import ReplayBuffer, Transition

__all__ = ["MLP", "ReplayBuffer", "Transition"]
