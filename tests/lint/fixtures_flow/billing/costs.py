"""Budget accounting fixture: the REP104 raise site."""


def charge(amount):
    if amount > 0:
        raise BudgetExhaustedError(f"spent {amount}")
    return amount


def total(values):
    return sum(values)
