"""Algorithm 4: singleton percentage improvements under limited budget.

The ε-greedy selection policy needs a "prior reward" for actions that have
never been taken — the percentage improvement ``η(W, {a})`` of the singleton
configuration ``{a}``. Computing these exactly would cost ``|W|·|I|`` what-if
calls, so Algorithm 4 spends a sub-budget ``B' = min(B/2, P)`` selectively:
each counted call picks a query (round-robin by default) and one of its
not-yet-evaluated candidate indexes (largest indexed table first by default)
and refines that index's workload-level estimate::

    cost(W, {I}) ← cost(W, {I}) − c(q, ∅) + c(q, {I})

Indexes never sampled keep their pessimistic initialisation
``cost(W, {I}) = c(W, ∅)``, i.e. a zero prior.
"""

from __future__ import annotations

import random

from repro.catalog import Index
from repro.backend.base import CostBackend
from repro.workload.candidates import candidates_for_query
from repro.workload.query import Query


def relevant_indexes(optimizer: CostBackend, query: Query, candidates) -> list[Index]:
    """The query's own candidate indexes within the global pool.

    Different queries contribute different candidate indexes, so the
    round-robin QuerySelection policy keeps *finding new indexes* — the
    design intent stated in Section 6.1.2.
    """
    return candidates_for_query(
        optimizer.workload.schema, query, list(candidates)
    )


class _QuerySelector:
    """QuerySelection policies for Algorithm 4."""

    def __init__(self, mode: str, optimizer: CostBackend, rng: random.Random):
        self._mode = mode
        self._optimizer = optimizer
        self._rng = rng
        self._cursor = 0

    def next_query(self, eligible: list[Query]) -> Query:
        """Pick the next query among those with unevaluated pairs left."""
        if self._mode == "cost_proportional":
            weights = [
                max(1e-12, self._optimizer.empty_cost(query)) for query in eligible
            ]
            return self._rng.choices(eligible, weights=weights, k=1)[0]
        # Round-robin: advance a cursor over the full workload order, skipping
        # queries that are no longer eligible.
        workload = list(self._optimizer.workload)
        eligible_ids = {query.qid for query in eligible}
        for _ in range(len(workload)):
            query = workload[self._cursor % len(workload)]
            self._cursor += 1
            if query.qid in eligible_ids:
                return query
        return eligible[0]


def _select_index(
    mode: str,
    optimizer: CostBackend,
    pending: list[Index],
    rng: random.Random,
) -> Index:
    """IndexSelection: largest-table-first (paper default) or uniform."""
    if mode == "uniform":
        return rng.choice(pending)
    schema = optimizer.workload.schema
    return max(
        pending,
        key=lambda ix: (
            schema.table(ix.table).row_count,
            ix.key_columns,
            ix.include_columns,
        ),
    )


def compute_singleton_priors(
    optimizer: CostBackend,
    candidates: list[Index],
    budget: int,
    rng: random.Random,
    query_selection: str = "round_robin",
    index_selection: str = "largest_table",
) -> dict[Index, float]:
    """Run Algorithm 4 and return prior improvements as fractions in [0, 1].

    Args:
        optimizer: Budget-metered what-if interface (calls made here count
            against the global budget).
        candidates: The candidate indexes ``I``.
        budget: Sub-budget ``B'`` for this computation.
        rng: Seeded RNG for the stochastic policies.
        query_selection: ``"round_robin"`` or ``"cost_proportional"``.
        index_selection: ``"largest_table"`` or ``"uniform"``.

    Returns:
        ``η(W, {I})`` for every candidate (0.0 for never-sampled indexes).
    """
    workload = optimizer.workload
    empty_total = optimizer.empty_workload_cost()
    # cost(W, {I}) initialised to c(W, ∅) for every candidate (lines 1-2).
    workload_costs: dict[Index, float] = {index: empty_total for index in candidates}

    per_query: dict[str, list[Index]] = {
        query.qid: relevant_indexes(optimizer, query, candidates)
        for query in workload
    }
    pending: dict[str, list[Index]] = {
        qid: list(indexes) for qid, indexes in per_query.items()
    }

    selector = _QuerySelector(query_selection, optimizer, rng)
    spent = 0
    while spent < budget:
        eligible = [query for query in workload if pending.get(query.qid)]
        if not eligible:
            break
        query = selector.next_query(eligible)
        index = _select_index(index_selection, optimizer, pending[query.qid], rng)
        pending[query.qid].remove(index)
        singleton = frozenset({index})
        # Pre-check after the RNG draw and the pending removal so the RNG
        # consumption order matches the historical try/except flow exactly;
        # cached pairs stay free and keep the loop going even when denied.
        if not (
            optimizer.policy.admits(query.qid)
            or optimizer.is_cached(query, singleton)
        ):
            break
        before = optimizer.calls_used
        singleton_cost = optimizer.whatif_cost(query, singleton)
        spent += optimizer.calls_used - before
        empty_cost = optimizer.empty_cost(query)
        workload_costs[index] += query.weight * (singleton_cost - empty_cost)

    priors: dict[Index, float] = {}
    for index, cost in workload_costs.items():
        if empty_total <= 0:
            priors[index] = 0.0
        else:
            priors[index] = max(0.0, min(1.0, 1.0 - cost / empty_total))
    return priors


def prior_pair_count(optimizer: CostBackend, candidates: list[Index]) -> int:
    """``P``: the number of relevant (query, index) pairs (for B' = min(B/2, P))."""
    return sum(
        len(relevant_indexes(optimizer, query, candidates))
        for query in optimizer.workload
    )
