"""The worker side of the parallel executor.

:func:`run_seed` is the module-level entry point a process pool imports and
executes. It rebuilds all prepared optimizer state locally (the tuner's
``tune()`` resolves a fresh :class:`~repro.backend.base.CostBackend` from
the spec's picklable backend selection over the shipped workload, exactly
as the serial path does per seed), evaluates the ground-truth improvement
worker-side, and returns a compact
:class:`~repro.parallel.spec.SeedOutcome`.

The same function body backs the serial path
(:func:`run_seed_with_result`), so serial and parallel runs execute
literally the same per-seed code — the determinism contract is structural,
not re-implemented.
"""

from __future__ import annotations

import copy
import time

from repro.parallel.spec import CellSpec, SeedOutcome
from repro.tuners.base import TuningResult


def run_seed_with_result(spec: CellSpec) -> tuple[SeedOutcome, TuningResult]:
    """Run one cell and return both the outcome and the live result.

    Used in-process by the serial path, which may need to retain the full
    :class:`~repro.tuners.base.TuningResult` (convergence series need the
    live optimizer). The parallel path only ships the outcome.
    """
    tuner = spec.tuner
    start = time.perf_counter()
    result = tuner.tune(
        spec.workload,
        budget=spec.budget,
        constraints=spec.constraints,
        candidates=list(spec.candidates),
        budget_policy=spec.budget_policy,
        backend=spec.backend,
    )
    elapsed = time.perf_counter() - start
    improvement = result.true_improvement()
    stats = None
    if result.optimizer is not None:
        # Snapshot after the ground-truth evaluation: the serial runner has
        # always read the counters at aggregation time, i.e. including the
        # uncounted evaluation lookups — keep those totals identical.
        stats = copy.copy(result.optimizer.stats)
        # Flush the persistent what-if cache (if configured) and release
        # pricing threads. close() keeps the optimizer usable, so callers
        # retaining the live result (convergence series) are unaffected.
        result.optimizer.close()
    outcome = SeedOutcome(
        label=spec.label,
        seed=spec.seed,
        tuner_name=result.tuner,
        improvement=improvement,
        calls_used=result.calls_used,
        budget=result.budget,
        seconds=elapsed,
        stop_reason=result.stop_reason,
        events=result.events,
        stats=stats,
    )
    return outcome, result


def run_seed(spec: CellSpec) -> SeedOutcome:
    """Process-pool entry point: run one cell, return the picklable outcome."""
    outcome, _ = run_seed_with_result(spec)
    return outcome
