"""REP002 fixtures: handlers that can swallow BudgetExhaustedError."""


def swallows_everything(run):
    try:
        run()
    except:  # repro-lint-expect: REP002
        pass


def swallows_broad(run):
    try:
        run()
    except Exception:  # repro-lint-expect: REP002
        pass


def drops_the_signal(run):
    try:
        run()
    except BudgetExhaustedError:  # repro-lint-expect: REP002
        pass


def handles_exhaustion(run, log):
    try:
        run()
    except BudgetExhaustedError:
        log("budget exhausted; falling back to derived costs")


def narrow_catch(run, log):
    try:
        run()
    except ValueError:
        log("bad value")


def justified(run):
    try:
        run()
    except Exception:  # repro-lint: off[REP002]
        pass
