"""Per-line rule suppression for ``repro.lint``.

A finding is suppressed by a trailing comment on the flagged line::

    for index in chosen:  # repro-lint: off[REP004]
        ...

``off[REP004,REP005]`` silences several rules at once; a bare
``# repro-lint: off`` silences every rule on that line. A suppression on
any *continuation line* of a multi-line statement covers the whole
logical line (findings anchor on the statement's first physical line, the
comment often only fits after the closing bracket)::

    cost = optimizer.true_workload_cost(
        configuration,
    )  # repro-lint: off[REP001]

Suppressions are line-scoped on purpose — a file-wide opt-out belongs in
the checked-in baseline, where it carries a justification.
"""

from __future__ import annotations

import io
import re
import tokenize

#: Matches ``# repro-lint: off`` with an optional ``[RULE, RULE]`` list.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*off(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?"
)

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES = "*"


def parse_raw_suppressions(source: str) -> dict[int, set[str]]:
    """The unexpanded table: only lines bearing a suppression comment.

    Used for diagnostics that must point at the comment itself (the
    unknown-rule warning); :func:`parse_suppressions` builds on this and
    additionally spreads suppressions over multi-line statements.
    """
    table: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None:
            table.setdefault(lineno, set()).add(ALL_RULES)
        else:
            rules = {part.strip() for part in raw.split(",") if part.strip()}
            table.setdefault(lineno, set()).update(rules)
    return table


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them.

    A line mapping to ``{ALL_RULES}`` suppresses every rule. A suppression
    written on any physical line of a multi-line statement is spread over
    the statement's whole logical span, so it reaches findings anchored on
    the first line.
    """
    table = parse_raw_suppressions(source)
    if table:
        for start, end in _logical_spans(source):
            span_rules: set[str] = set()
            for line in range(start, end + 1):
                span_rules |= table.get(line, set())
            if not span_rules or end == start:
                continue
            for line in range(start, end + 1):
                table.setdefault(line, set()).update(span_rules)
    return table


def _logical_spans(source: str) -> list[tuple[int, int]]:
    """(first, last) physical line of every multi-line logical line.

    Tokenization failures (the engine reports those as REP000 anyway)
    yield no spans — suppression falls back to exact-line matching.
    """
    spans: list[tuple[int, int]] = []
    start: int | None = None
    skip = (
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    )
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.NEWLINE:
                if start is not None and token.end[0] > start:
                    spans.append((start, token.end[0]))
                start = None
            elif token.type not in skip and start is None:
                start = token.start[0]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return spans


def is_suppressed(table: dict[int, set[str]], line: int, rule: str) -> bool:
    """Whether ``rule`` is suppressed on ``line`` by ``table``."""
    rules = table.get(line)
    if not rules:
        return False
    return ALL_RULES in rules or rule in rules
