"""The sanctioned pricing executor module: REP007's thread checks skip it.

This file's *name* is the exemption — ``backend/concurrent.py`` is the
one place the backend layer may own a thread pool.
"""

from concurrent.futures import ThreadPoolExecutor


def make_pool(jobs):
    return ThreadPoolExecutor(max_workers=jobs)
