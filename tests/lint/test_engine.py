"""Engine, suppression, baseline, and CLI tests for ``repro.lint``."""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, BaselineEntry, LintEngine, REGISTRY
from repro.lint.cli import main as lint_main
from repro.lint.engine import SYNTAX_RULE
from repro.lint.findings import Finding
from repro.lint.suppressions import ALL_RULES, is_suppressed, parse_suppressions


class TestSuppressions:
    def test_single_rule(self):
        table = parse_suppressions("x = 1  # repro-lint: off[REP004]\n")
        assert table == {1: {"REP004"}}

    def test_multiple_rules(self):
        table = parse_suppressions("x = 1  # repro-lint: off[REP004, REP005]\n")
        assert table == {1: {"REP004", "REP005"}}

    def test_bare_off_suppresses_everything(self):
        table = parse_suppressions("x = 1  # repro-lint: off\n")
        assert table == {1: {ALL_RULES}}
        assert is_suppressed(table, 1, "REP001")
        assert is_suppressed(table, 1, "REP006")

    def test_unrelated_comment_is_not_a_suppression(self):
        assert parse_suppressions("x = 1  # repro-lint-expect: REP004\n") == {}

    def test_other_lines_unaffected(self):
        table = parse_suppressions("x = 1  # repro-lint: off[REP004]\ny = 2\n")
        assert not is_suppressed(table, 2, "REP004")


class TestEngine:
    def test_syntax_error_becomes_rep000(self):
        findings = LintEngine().check_source("def broken(:\n", "mod.py")
        assert len(findings) == 1
        assert findings[0].rule == SYNTAX_RULE

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="REP999"):
            LintEngine(select=["REP999"])

    def test_registry_has_all_rules(self):
        assert set(REGISTRY) == {
            "REP001", "REP002", "REP003", "REP004",
            "REP005", "REP006", "REP007",
        }

    def test_findings_sorted_by_position(self):
        source = (
            "def f(m, q, c, xs=[]):\n"
            "    return m.true_cost(q, c)\n"
        )
        findings = LintEngine().check_source(source, "tuners/m.py")
        assert [f.rule for f in findings] == ["REP006", "REP001"]
        assert findings[0].line <= findings[1].line


class TestBaseline:
    def _finding(self, message="msg", path="src/m.py", rule="REP001"):
        return Finding(rule=rule, path=path, line=3, col=0, message=message)

    def test_split_partitions(self):
        accepted_f = self._finding("accepted")
        new_f = self._finding("brand new")
        baseline = Baseline(
            [
                BaselineEntry(path="src/m.py", rule="REP001", message="accepted"),
                BaselineEntry(path="src/m.py", rule="REP001", message="gone"),
            ]
        )
        new, accepted, stale = baseline.split([accepted_f, new_f])
        assert new == [new_f]
        assert accepted == [accepted_f]
        assert [entry.message for entry in stale] == ["gone"]

    def test_line_drift_does_not_stale(self):
        baseline = Baseline(
            [BaselineEntry(path="src/m.py", rule="REP001", message="msg", line=99)]
        )
        new, accepted, stale = baseline.split([self._finding()])
        assert not new and not stale and len(accepted) == 1

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        loaded = Baseline.load(path)
        assert [entry.key for entry in loaded.entries] == [
            ("src/m.py", "REP001", "msg")
        ]


class TestCli:
    def _write_dirty(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(xs=[]):\n    return xs\n", encoding="utf-8")
        return target

    def test_findings_exit_1(self, tmp_path, capsys):
        target = self._write_dirty(tmp_path)
        assert lint_main([str(target), "--no-baseline"]) == 1
        assert "REP006" in capsys.readouterr().out

    def test_clean_exit_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f(xs=None):\n    return xs\n", encoding="utf-8")
        assert lint_main([str(target), "--no-baseline"]) == 0

    def test_baseline_silences_and_exits_0(self, tmp_path, capsys):
        target = self._write_dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline", str(baseline)]) == 0
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_stale_baseline_reported_but_exit_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "path": "gone.py",
                            "rule": "REP001",
                            "message": "old",
                            "justification": "was fixed",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        assert "stale" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = self._write_dirty(tmp_path)
        assert lint_main([str(target), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "REP006"
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []

    def test_select_unknown_rule_exit_2(self, tmp_path, capsys):
        target = self._write_dirty(tmp_path)
        assert lint_main([str(target), "--select", "REP999"]) == 2

    def test_missing_path_exit_2(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.py")]) == 2

    def test_no_paths_exit_2(self):
        assert lint_main([]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP006"):
            assert rule_id in out
