"""The default cost backend: the simulated analytic what-if optimizer."""

from __future__ import annotations

from repro.optimizer.whatif import WhatIfOptimizer


class AnalyticBackend(WhatIfOptimizer):
    """The analytic cost model behind the :class:`~repro.backend.CostBackend` seam.

    A pure re-export of :class:`~repro.optimizer.whatif.WhatIfOptimizer`
    under its backend name: same constructor, same caching, metering, and
    batching, bit-identical costs and call-log layouts (pinned by the
    golden-oracle tests). Exists so that *every* consumer resolves its cost
    engine through :func:`~repro.backend.factory.build_backend` and the
    other backends can subclass one canonical class.
    """

    #: Registry name (``--backend analytic``).
    name = "analytic"

    #: Costs satisfy Assumption 1 (adding an index never increases cost),
    #: so the monotonicity sanitizer may be installed on sessions using
    #: this backend.
    monotonic = True
