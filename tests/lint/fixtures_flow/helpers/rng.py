"""RNG factories (REP102 fixture support).

``random.Random()`` with no seed never trips the per-file REP003 rule
(that one only sees module-global *state calls*), so laundering an
unseeded generator through a factory is exactly REP102's territory.
"""

import random


def make_global_gen():
    return random.Random()


def fresh_gen():
    return make_global_gen()


def make_rng(seed):
    return random.Random(seed)
