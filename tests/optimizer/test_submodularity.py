"""Property-based verification of Theorem 1 (and Lemma 1 / Theorem 4).

With singleton cost derivation (Equation 2), the benefit function
``b(W, C) = d(W, ∅) − d(W, C)`` is a non-negative monotone submodular set
function. We verify all three properties over random workloads/configs with
real singleton what-if costs from the cost model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.optimizer.cost_model import CostModel
from repro.workload import bind_query


@pytest.fixture(scope="module")
def singleton_costs(star_schema, toy_workload, toy_candidates):
    """c(q, {z}) for every query and candidate, plus c(q, ∅)."""
    model = CostModel(star_schema)
    empty = {}
    table = {}
    for query in toy_workload:
        prepared = model.prepare(
            bind_query(star_schema, query.statement, query.qid)
        )
        empty[query.qid] = model.cost(prepared, ())
        for index in toy_candidates:
            table[(query.qid, index)] = model.cost(prepared, [index])
    return empty, table


def derived_cost(empty, table, qid, config):
    """Equation 2: min over singleton subsets."""
    best = empty[qid]
    for index in config:
        best = min(best, table[(qid, index)])
    return best


def benefit(empty, table, workload, config):
    return sum(
        empty[q.qid] - derived_cost(empty, table, q.qid, config) for q in workload
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_benefit_non_negative(data, toy_workload, toy_candidates, singleton_costs):
    empty, table = singleton_costs
    size = data.draw(st.integers(min_value=0, max_value=len(toy_candidates)))
    shuffled = data.draw(st.permutations(toy_candidates))
    config = frozenset(shuffled[:size])
    assert benefit(empty, table, toy_workload, config) >= -1e-9


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_benefit_monotone(data, toy_workload, toy_candidates, singleton_costs):
    """X ⊆ Y implies b(W, X) <= b(W, Y)."""
    empty, table = singleton_costs
    shuffled = data.draw(st.permutations(toy_candidates))
    small_size = data.draw(st.integers(min_value=0, max_value=len(shuffled)))
    extra = data.draw(st.integers(min_value=0, max_value=len(shuffled) - small_size))
    x = frozenset(shuffled[:small_size])
    y = x | frozenset(shuffled[small_size : small_size + extra])
    assert benefit(empty, table, toy_workload, x) <= benefit(
        empty, table, toy_workload, y
    ) + 1e-9


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_benefit_submodular(data, toy_workload, toy_candidates, singleton_costs):
    """Theorem 1: b(X ∪ {z}) − b(X) >= b(Y ∪ {z}) − b(Y) for X ⊆ Y, z ∉ Y."""
    empty, table = singleton_costs
    shuffled = data.draw(st.permutations(toy_candidates))
    z = shuffled[0]
    rest = shuffled[1:]
    small_size = data.draw(st.integers(min_value=0, max_value=len(rest)))
    extra = data.draw(st.integers(min_value=0, max_value=len(rest) - small_size))
    x = frozenset(rest[:small_size])
    y = x | frozenset(rest[small_size : small_size + extra])

    gain_x = benefit(empty, table, toy_workload, x | {z}) - benefit(
        empty, table, toy_workload, x
    )
    gain_y = benefit(empty, table, toy_workload, y | {z}) - benefit(
        empty, table, toy_workload, y
    )
    assert gain_x >= gain_y - 1e-9


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_lemma1_per_query_marginal_gain(data, toy_workload, toy_candidates, singleton_costs):
    """Lemma 1: Δ(q, X, z) >= Δ(q, Y, z) for X ⊆ Y."""
    empty, table = singleton_costs
    query = data.draw(st.sampled_from(toy_workload.queries))
    shuffled = data.draw(st.permutations(toy_candidates))
    z = shuffled[0]
    rest = shuffled[1:]
    small_size = data.draw(st.integers(min_value=0, max_value=6))
    extra = data.draw(st.integers(min_value=0, max_value=6))
    x = frozenset(rest[:small_size])
    y = x | frozenset(rest[small_size : small_size + extra])

    def delta(config):
        return derived_cost(empty, table, query.qid, config) - derived_cost(
            empty, table, query.qid, config | {z}
        )

    assert delta(x) >= delta(y) - 1e-9
