"""Terminal line charts for improvement curves.

The paper's figures are improvement-vs-budget line charts; this renderer
draws the same curves as fixed-width ASCII so examples and ad-hoc analysis
can show them without a plotting stack.
"""

from __future__ import annotations

_MARKERS = "ox*+#@%&"


def line_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "budget",
    y_label: str = "improvement %",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Points are plotted on a shared grid; later series overwrite earlier ones
    on collisions (a legend maps markers to labels). Both axes are linear
    and auto-scaled to the data.

    Args:
        series: One or more named point lists (x ascending not required).
        width: Plot-area character columns.
        height: Plot-area character rows.
        title: Optional caption printed above the chart.
        x_label: X-axis caption.
        y_label: Y-axis caption.

    Raises:
        ValueError: If no series contains any point.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot: all series are empty")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return (height - 1 - row, col)

    legend: list[str] = []
    for position, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[position % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        ordered = sorted(pts)
        for (x1, y1), (x2, y2) in zip(ordered, ordered[1:], strict=False):
            # Linear interpolation between consecutive points.
            steps = max(
                abs(cell(x2, y2)[1] - cell(x1, y1)[1]),
                abs(cell(x2, y2)[0] - cell(x1, y1)[0]),
                1,
            )
            for step in range(steps + 1):
                t = step / steps
                row, col = cell(x1 + (x2 - x1) * t, y1 + (y2 - y1) * t)
                grid[row][col] = marker
        for x, y in ordered:
            row, col = cell(x, y)
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:8.1f} +"
    bottom_label = f"{y_lo:8.1f} +"
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label
        elif row_index == height - 1:
            prefix = bottom_label
        else:
            prefix = " " * 9 + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * (width - 1))
    lines.append(
        " " * 10 + f"{x_lo:<12.0f}{x_label:^{max(0, width - 24)}}{x_hi:>12.0f}"
    )
    lines.append(" " * 10 + "  ".join(legend) + f"   ({y_label})")
    return "\n".join(lines)
