"""CLI tests (in-process via repro.cli.main)."""

import pytest

from repro.cli import main


class TestWorkloadsCommand:
    def test_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("job", "tpch", "tpcds", "real_d", "real_m"):
            assert name in out


class TestTuneCommand:
    def test_tune_with_call_budget(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "60", "--max-indexes", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "recommended configuration" in out

    def test_tune_with_time_budget(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--minutes", "5", "--algo", "vanilla"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "time budget" in out

    def test_tune_each_algorithm_smoke(self, capsys):
        for algo in ("vanilla", "two_phase", "autoadmin", "dta", "random"):
            assert main(
                ["tune", "--workload", "tpch", "--budget", "25", "--algo", algo,
                 "--max-indexes", "3"]
            ) == 0

    def test_min_improvement_can_suppress_recommendation(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "20",
             "--min-improvement", "99"]
        )
        assert code == 0
        assert "no indexes recommended" in capsys.readouterr().out

    def test_budget_and_minutes_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["tune", "--workload", "tpch", "--budget", "10", "--minutes", "5"])

    def test_requires_some_budget(self):
        with pytest.raises(SystemExit):
            main(["tune", "--workload", "tpch"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "--workload", "nope", "--budget", "10"])


class TestExplainCommand:
    def test_shows_before_and_after_plans(self, capsys):
        code = main(
            ["explain", "--workload", "tpch", "--query", "q6", "--budget", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan without hypothetical indexes" in out
        assert "plan with the recommended configuration" in out

    def test_unknown_query_is_clean_error(self, capsys):
        code = main(
            ["explain", "--workload", "tpch", "--query", "zz", "--budget", "10"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCompressCommand:
    def test_compress_reports_representatives(self, capsys):
        code = main(["compress", "--workload", "tpch", "--target", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "22 queries -> 5 representatives" in out


class TestTuneFlags:
    def test_mcts_policy_flags(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "30", "--algo", "mcts",
             "--selection", "uct", "--rollout", "random", "--extraction", "bce"]
        )
        assert code == 0

    def test_boltzmann_selection_flag(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "30",
             "--selection", "boltzmann"]
        )
        assert code == 0

    def test_storage_cap_flag(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "40",
             "--max-storage-gb", "2"]
        )
        assert code == 0

    def test_invalid_selection_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "--workload", "tpch", "--budget", "10",
                  "--selection", "psychic"])


class TestBudgetPolicyFlags:
    def test_wii_policy_flag(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "30", "--algo", "vanilla",
             "--budget-policy", "wii"]
        )
        assert code == 0
        assert "improvement" in capsys.readouterr().out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "--workload", "tpch", "--budget", "10",
                  "--budget-policy", "lifo"])

    def test_trace_round_trips_through_jsonl(self, capsys, tmp_path):
        import json

        from repro.budget.events import SessionEvent

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["tune", "--workload", "tpch", "--budget", "30", "--algo", "vanilla",
             "--trace", str(trace)]
        )
        assert code == 0
        assert f"-> {trace}" in capsys.readouterr().out
        lines = trace.read_text().splitlines()
        assert lines
        events = [SessionEvent.from_json(json.loads(line)) for line in lines]
        kinds = {event.kind for event in events}
        assert "whatif_call" in kinds
        assert "checkpoint" in kinds
        # Round-trip is lossless: serialising again reproduces the file.
        assert [json.dumps(e.to_json()) for e in events] == lines

    def test_trace_to_stdout(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "20", "--algo", "vanilla",
             "--trace", "-"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"kind": "whatif_call"' in out


class TestTuneMultiSeed:
    def test_seeds_reports_mean_and_per_seed(self, capsys):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "40", "--algo", "mcts",
             "--max-indexes", "4", "--seeds", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "over 3 seeds" in out
        assert out.count("seed ") == 3

    def test_jobs_matches_serial(self, capsys):
        args = ["tune", "--workload", "tpch", "--budget", "40", "--algo",
                "mcts", "--max-indexes", "4", "--seeds", "2"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        pooled = capsys.readouterr().out
        # Same improvement lines; only the jobs note differs.
        assert [line for line in serial.splitlines() if "seed " in line] == [
            line for line in pooled.splitlines() if "seed " in line
        ]

    def test_seeds_rejects_minutes(self):
        code = main(
            ["tune", "--workload", "tpch", "--minutes", "5", "--seeds", "2"]
        )
        assert code == 2

    def test_seeds_rejects_trace(self):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "20", "--seeds", "2",
             "--trace", "-"]
        )
        assert code == 2

    def test_nonpositive_jobs_rejected(self):
        code = main(
            ["tune", "--workload", "tpch", "--budget", "20", "--jobs", "0"]
        )
        assert code == 2


class TestEvalCommand:
    def test_fig17_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        code = main(["eval", "--figure", "fig17", "--seeds", "1", "--ks", "3"])
        assert code == 0
        assert "Figure 17" in capsys.readouterr().out

    def test_json_archive_written(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.setenv("REPRO_SCALE", "0.02")
        path = tmp_path / "BENCH_fig17.json"
        code = main(
            ["eval", "--figure", "fig17", "--seeds", "1", "--ks", "3",
             "--jobs", "2", "--json", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["figure"] == "fig17"
        assert payload["settings"]["jobs"] == 2
        assert payload["records"]
        assert payload["records"][0]["seed_metrics"]

        from repro.eval.report import validate_bench_payload

        assert validate_bench_payload(payload) == []

    def test_unknown_figure_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["eval", "--figure", "fig99"])

    def test_nonpositive_jobs_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["eval", "--figure", "table1", "--jobs", "0"]) == 2
