"""REP001 is exempt under optimizer/: the metering layer prices directly."""


def price_directly(model, optimizer, prepared, key, config):
    cost = model.cost(prepared, key)
    truth = optimizer.true_workload_cost(config)
    return cost, truth
