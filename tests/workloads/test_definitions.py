"""Benchmark workload definition tests (Table 1 fidelity)."""

import statistics

import pytest

from repro.exceptions import TuningError
from repro.workload.analysis import bind_query
from repro.workload.suites import available_workloads, get_workload
from repro.workload.suites.real import enterprise_schema
from repro.workload.suites.tpch import tpch_schema


def complexity(workload):
    joins, filters, scans = [], [], []
    for query in workload:
        bound = bind_query(workload.schema, query.statement, query.qid)
        joins.append(bound.num_joins)
        filters.append(bound.num_filters)
        scans.append(bound.num_scans)
    return (
        statistics.mean(joins),
        statistics.mean(filters),
        statistics.mean(scans),
    )


class TestRegistry:
    def test_available_names(self):
        assert set(available_workloads()) == {
            "job",
            "real_d",
            "real_m",
            "toy",
            "tpcds",
            "tpch",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(TuningError):
            get_workload("nope")

    def test_cache_returns_same_object(self):
        assert get_workload("tpch") is get_workload("tpch")

    def test_scaled_variant_distinct(self):
        small = get_workload("real_m", scale=0.1)
        assert len(small.schema.tables) < 474


class TestTPCH:
    def test_schema_shape(self):
        schema = tpch_schema()
        assert len(schema.tables) == 8
        assert schema.table("lineitem").row_count == 60_000_000

    def test_22_queries_parse_and_bind(self, tpch):
        assert len(tpch) == 22
        for query in tpch:
            bound = bind_query(tpch.schema, query.statement, query.qid)
            assert bound.num_scans >= 1

    def test_complexity_close_to_paper(self, tpch):
        joins, _, scans = complexity(tpch)
        assert 1.5 <= joins <= 4.0  # paper: 2.8
        assert 2.5 <= scans <= 5.0  # paper: 3.7

    def test_q1_is_single_table_aggregate(self, tpch):
        bound = bind_query(tpch.schema, tpch.query("q1").statement, "q1")
        assert bound.tables == {"lineitem"}
        assert bound.group_by


class TestTPCDS:
    def test_size_and_shape(self):
        workload = get_workload("tpcds")
        assert len(workload) == 99
        assert len(workload.schema.tables) == 24

    def test_complexity_close_to_paper(self):
        joins, _, scans = complexity(get_workload("tpcds"))
        assert 6.0 <= joins <= 9.5  # paper: 7.7
        assert 7.0 <= scans <= 10.5  # paper: 8.8


class TestJOB:
    def test_size_and_shape(self):
        workload = get_workload("job")
        assert len(workload) == 33
        assert len(workload.schema.tables) == 21

    def test_complexity_close_to_paper(self):
        joins, _, scans = complexity(get_workload("job"))
        assert 6.5 <= joins <= 9.5  # paper: 7.9
        assert 7.5 <= scans <= 10.5  # paper: 8.9


class TestRealAnalogs:
    def test_real_m_scaled(self):
        workload = get_workload("real_m", scale=0.1)
        assert len(workload) == 317
        joins, _, _ = complexity(workload)
        assert 15.0 <= joins <= 25.0  # paper: 20.2

    def test_real_d_scaled(self):
        workload = get_workload("real_d", scale=0.05)
        assert len(workload) == 32
        joins, _, _ = complexity(workload)
        assert 11.0 <= joins <= 20.0  # paper: 15.6

    def test_enterprise_schema_deterministic(self):
        first = enterprise_schema("x", num_tables=50, target_bytes=10**9, seed=3)
        second = enterprise_schema("x", num_tables=50, target_bytes=10**9, seed=3)
        assert [t.row_count for t in first.tables] == [
            t.row_count for t in second.tables
        ]

    def test_enterprise_schema_size_near_target(self):
        schema = enterprise_schema("x", num_tables=100, target_bytes=10**9, seed=4)
        assert 0.3 * 10**9 <= schema.total_size_bytes <= 3 * 10**9

    def test_enterprise_schema_connected_enough(self):
        schema = enterprise_schema("x", num_tables=60, target_bytes=10**8, seed=5)
        # Every non-root table has at least one foreign key.
        children = {fk.child_table for fk in schema.foreign_keys}
        assert len(children) >= 59
