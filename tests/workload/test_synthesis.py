"""Workload synthesizer tests."""

import statistics

import pytest

from repro.exceptions import TuningError
from repro.workload.analysis import bind_query
from repro.workload.synthesis import SynthesisProfile, WorkloadSynthesizer


class TestProfileValidation:
    def test_rejects_zero_queries(self):
        with pytest.raises(TuningError):
            SynthesisProfile(num_queries=0)

    def test_rejects_inverted_join_range(self):
        with pytest.raises(TuningError):
            SynthesisProfile(min_joins=5, max_joins=2)

    def test_rejects_unknown_bias(self):
        with pytest.raises(TuningError):
            SynthesisProfile(start_table_bias="weird")


class TestGeneration:
    def test_query_count(self, star_schema):
        profile = SynthesisProfile(num_queries=7)
        workload = WorkloadSynthesizer(star_schema, profile, seed=1).generate("w")
        assert len(workload) == 7

    def test_deterministic_for_seed(self, star_schema):
        profile = SynthesisProfile(num_queries=5)
        first = WorkloadSynthesizer(star_schema, profile, seed=9).generate("w")
        second = WorkloadSynthesizer(star_schema, profile, seed=9).generate("w")
        assert [q.sql for q in first] == [q.sql for q in second]

    def test_different_seeds_differ(self, star_schema):
        profile = SynthesisProfile(num_queries=5)
        first = WorkloadSynthesizer(star_schema, profile, seed=1).generate("w")
        second = WorkloadSynthesizer(star_schema, profile, seed=2).generate("w")
        assert [q.sql for q in first] != [q.sql for q in second]

    def test_all_queries_parse_and_bind(self, star_schema):
        profile = SynthesisProfile(num_queries=20, max_joins=2, filters_per_query=2)
        workload = WorkloadSynthesizer(star_schema, profile, seed=4).generate("w")
        for query in workload:
            bound = bind_query(star_schema, query.statement, query.qid)
            assert bound.num_scans >= 1

    def test_join_counts_within_bounds(self, star_schema):
        profile = SynthesisProfile(num_queries=20, min_joins=1, max_joins=2)
        workload = WorkloadSynthesizer(star_schema, profile, seed=5).generate("w")
        for query in workload:
            bound = bind_query(star_schema, query.statement, query.qid)
            assert 0 <= bound.num_joins <= 2  # walk may stop early at 0/1

    def test_mean_filters_tracks_profile(self, star_schema):
        profile = SynthesisProfile(
            num_queries=60, max_joins=1, filters_per_query=2.0
        )
        workload = WorkloadSynthesizer(star_schema, profile, seed=6).generate("w")
        means = statistics.mean(
            bind_query(star_schema, q.statement, q.qid).num_filters for q in workload
        )
        assert 1.0 <= means <= 3.0

    def test_single_table_profile(self, star_schema):
        profile = SynthesisProfile(num_queries=10, min_joins=0, max_joins=0)
        workload = WorkloadSynthesizer(star_schema, profile, seed=7).generate("w")
        for query in workload:
            bound = bind_query(star_schema, query.statement, query.qid)
            assert bound.num_scans == 1

    def test_hot_bias_concentrates_starts(self, star_schema):
        profile = SynthesisProfile(
            num_queries=40,
            max_joins=0,
            start_table_bias="hot",
            hot_table_count=1,
        )
        workload = WorkloadSynthesizer(star_schema, profile, seed=8).generate("w")
        hot_hits = sum(
            1
            for q in workload
            if "fact" in bind_query(star_schema, q.statement, q.qid).tables
        )
        assert hot_hits >= len(workload) * 0.6
