"""WhatIfOptimizer tests: budget metering, caching, derivation, logging."""

import pytest

from repro.exceptions import BudgetExhaustedError, TuningError
from repro.optimizer.whatif import BudgetMeter, WhatIfOptimizer


@pytest.fixture
def optimizer(toy_workload):
    return WhatIfOptimizer(toy_workload, budget=10)


class TestBudgetMeter:
    def test_counts_down(self):
        meter = BudgetMeter(3)
        meter.charge()
        assert meter.spent == 1
        assert meter.remaining == 2

    def test_exhaustion(self):
        meter = BudgetMeter(1)
        meter.charge()
        assert meter.exhausted
        with pytest.raises(BudgetExhaustedError):
            meter.charge()

    def test_unlimited(self):
        meter = BudgetMeter(None)
        for _ in range(100):
            meter.charge()
        assert not meter.exhausted
        assert meter.remaining is None

    def test_zero_budget_starts_exhausted(self):
        assert BudgetMeter(0).exhausted

    def test_negative_budget_rejected(self):
        with pytest.raises(TuningError):
            BudgetMeter(-1)


class TestWhatIfCost:
    def test_empty_config_is_free(self, optimizer, toy_workload):
        cost = optimizer.whatif_cost(toy_workload[0], frozenset())
        assert cost > 0
        assert optimizer.calls_used == 0

    def test_counted_call(self, optimizer, toy_workload, toy_candidates):
        optimizer.whatif_cost(toy_workload[0], frozenset(toy_candidates[:1]))
        assert optimizer.calls_used == 1

    def test_cache_makes_repeats_free(self, optimizer, toy_workload, toy_candidates):
        config = frozenset(toy_candidates[:1])
        first = optimizer.whatif_cost(toy_workload[0], config)
        second = optimizer.whatif_cost(toy_workload[0], config)
        assert first == second
        assert optimizer.calls_used == 1

    def test_config_key_ignores_order(self, optimizer, toy_workload, toy_candidates):
        a, b = toy_candidates[:2]
        optimizer.whatif_cost(toy_workload[0], [a, b])
        optimizer.whatif_cost(toy_workload[0], [b, a])
        assert optimizer.calls_used == 1

    def test_budget_enforced(self, toy_workload, toy_candidates):
        # normalize_cache off: whole-key caching counts every new pair, so
        # the meter behaviour is independent of per-query index relevance.
        optimizer = WhatIfOptimizer(toy_workload, budget=2, normalize_cache=False)
        for i in range(2):
            optimizer.whatif_cost(toy_workload[i], frozenset(toy_candidates[:1]))
        with pytest.raises(BudgetExhaustedError):
            optimizer.whatif_cost(toy_workload[3], frozenset(toy_candidates[:1]))

    def test_is_cached(self, optimizer, toy_workload, toy_candidates):
        config = frozenset(toy_candidates[:1])
        assert not optimizer.is_cached(toy_workload[0], config)
        optimizer.whatif_cost(toy_workload[0], config)
        assert optimizer.is_cached(toy_workload[0], config)
        assert optimizer.is_cached(toy_workload[0], frozenset())


class TestDerivedCost:
    def test_equals_whatif_when_known(self, optimizer, toy_workload, toy_candidates):
        config = frozenset(toy_candidates[:2])
        exact = optimizer.whatif_cost(toy_workload[0], config)
        assert optimizer.derived_cost(toy_workload[0], config) == exact

    def test_upper_bounds_whatif(self, optimizer, toy_workload, toy_candidates):
        query = toy_workload[0]
        single = frozenset(toy_candidates[:1])
        optimizer.whatif_cost(query, single)
        pair = frozenset(toy_candidates[:2])
        derived = optimizer.derived_cost(query, pair)
        exact = optimizer.true_cost(query, pair)
        assert derived >= exact - 1e-9

    def test_unknown_config_derives_from_empty(self, optimizer, toy_workload, toy_candidates):
        query = toy_workload[0]
        config = frozenset(toy_candidates[:3])
        assert optimizer.derived_cost(query, config) == optimizer.empty_cost(query)

    def test_derived_is_free(self, optimizer, toy_workload, toy_candidates):
        optimizer.derived_cost(toy_workload[0], frozenset(toy_candidates))
        assert optimizer.calls_used == 0

    def test_workload_level_sums(self, optimizer, toy_workload):
        assert optimizer.derived_workload_cost(frozenset()) == pytest.approx(
            optimizer.empty_workload_cost()
        )


class TestCallLog:
    def test_log_records_layout(self, toy_workload, toy_candidates):
        # normalize_cache off so both pairs are counted (and logged) even
        # when the index is irrelevant to one of the queries.
        optimizer = WhatIfOptimizer(toy_workload, budget=10, normalize_cache=False)
        config = frozenset(toy_candidates[:1])
        optimizer.whatif_cost(toy_workload[0], config)
        optimizer.whatif_cost(toy_workload[1], config)
        log = optimizer.call_log
        assert [entry.ordinal for entry in log] == [1, 2]
        assert log[0].qid == toy_workload[0].qid
        assert log[0].configuration == config

    def test_cached_calls_not_logged(self, optimizer, toy_workload, toy_candidates):
        config = frozenset(toy_candidates[:1])
        optimizer.whatif_cost(toy_workload[0], config)
        optimizer.whatif_cost(toy_workload[0], config)
        assert len(optimizer.call_log) == 1


class TestTrueCost:
    def test_true_cost_uncounted(self, optimizer, toy_workload, toy_candidates):
        optimizer.true_workload_cost(frozenset(toy_candidates[:3]))
        assert optimizer.calls_used == 0

    def test_true_cost_matches_cached_whatif(self, optimizer, toy_workload, toy_candidates):
        config = frozenset(toy_candidates[:1])
        exact = optimizer.whatif_cost(toy_workload[0], config)
        assert optimizer.true_cost(toy_workload[0], config) == exact

    def test_explain_returns_plan(self, optimizer, toy_workload, toy_candidates):
        plan = optimizer.explain(toy_workload[0], frozenset(toy_candidates[:2]))
        assert plan.total_cost > 0
