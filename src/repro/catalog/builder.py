"""Fluent schema builder used by workload definitions and tests.

Example:
    >>> from repro.catalog import SchemaBuilder, ColumnType
    >>> schema = (
    ...     SchemaBuilder("toy")
    ...     .table("R", rows=10_000)
    ...     .column("a", ColumnType.INTEGER, distinct=100)
    ...     .column("b", ColumnType.INTEGER, distinct=1_000)
    ...     .table("S", rows=50_000)
    ...     .column("c", ColumnType.INTEGER, distinct=1_000)
    ...     .column("d", ColumnType.INTEGER, distinct=500, lo=0, hi=1_000)
    ...     .foreign_key("R", "b", "S", "c")
    ...     .build()
    ... )
    >>> schema.table("R").row_count
    10000
"""

from __future__ import annotations

from repro.catalog.column import Column, ColumnStats, ColumnType
from repro.catalog.keys import ForeignKey
from repro.catalog.schema import Schema
from repro.catalog.table import Table
from repro.exceptions import CatalogError


class SchemaBuilder:
    """Incrementally assemble a :class:`~repro.catalog.Schema`."""

    def __init__(self, name: str):
        self._name = name
        self._tables: list[tuple[str, int, list[Column]]] = []
        self._foreign_keys: list[ForeignKey] = []

    def table(self, name: str, rows: int) -> "SchemaBuilder":
        """Start a new table; subsequent :meth:`column` calls attach to it."""
        self._tables.append((name, rows, []))
        return self

    def column(
        self,
        name: str,
        ctype: ColumnType = ColumnType.INTEGER,
        *,
        distinct: int | None = None,
        lo: float = 0.0,
        hi: float | None = None,
        null_fraction: float = 0.0,
        width: int | None = None,
    ) -> "SchemaBuilder":
        """Add a column to the most recently started table.

        Args:
            name: Column name.
            ctype: Logical type.
            distinct: NDV; defaults to the table's row count (a key-like
                column) capped at 1 for empty tables.
            lo: Domain lower bound for numeric columns.
            hi: Domain upper bound; defaults to ``lo + distinct``.
            null_fraction: Fraction of NULL rows.
            width: Stored width in bytes; defaults to the type width.
        """
        if not self._tables:
            raise CatalogError("column() called before any table()")
        table_name, rows, columns = self._tables[-1]
        ndv = distinct if distinct is not None else max(1, rows)
        upper = hi if hi is not None else lo + max(1, ndv)
        stats = ColumnStats(
            distinct_count=ndv,
            min_value=lo,
            max_value=upper,
            null_fraction=null_fraction,
            avg_width=width if width is not None else ctype.default_width,
        )
        columns.append(Column(name=name, ctype=ctype, stats=stats))
        return self

    def foreign_key(
        self, child_table: str, child_column: str, parent_table: str, parent_column: str
    ) -> "SchemaBuilder":
        """Register a foreign key edge between two already-declared tables."""
        self._foreign_keys.append(
            ForeignKey(
                child_table=child_table,
                child_column=child_column,
                parent_table=parent_table,
                parent_column=parent_column,
            )
        )
        return self

    def build(self) -> Schema:
        """Validate and produce the immutable schema."""
        tables = [
            Table(name=name, columns=columns, row_count=rows)
            for name, rows, columns in self._tables
        ]
        return Schema(name=self._name, tables=tables, foreign_keys=self._foreign_keys)
