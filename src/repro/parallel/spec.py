"""Picklable cell specs and per-seed outcomes for the parallel executor.

The paper's grids are embarrassingly parallel: every (tuner, K, B, seed)
cell is an independent tuning run. :class:`CellSpec` is the unit of work a
worker process receives — everything it needs to rebuild prepared optimizer
state locally (the workload, the candidate set, a fresh un-run tuner
instance, the constraints and the budget discipline) in one picklable
bundle. :class:`SeedOutcome` is the scalar payload shipped back: the
ground-truth improvement, the counted calls, the full
:class:`~repro.budget.events.SessionEvent` stream and the
:class:`~repro.optimizer.whatif.WhatIfStats` counters, so the merge side
aggregates exactly what the serial path would have seen.

Live optimizers never cross the process boundary — workers evaluate
``true_improvement()`` locally and ship the float.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.factory import BackendSpec
from repro.budget.events import SessionEvent
from repro.catalog import Index
from repro.config import TuningConstraints
from repro.optimizer.whatif import WhatIfStats
from repro.tuners.base import Tuner
from repro.workload.query import Workload


@dataclass(frozen=True)
class CellSpec:
    """One (tuner, K, B, seed) unit of work for a worker process.

    Attributes:
        label: Roster label (diagnostic; names the cell in errors).
        workload: The workload under test (pickled inline — workloads are
            small: a schema plus a query list).
        candidates: The shared candidate set (pickled; regenerating in the
            worker would also be deterministic, but shipping the exact list
            keeps custom candidate sets bit-identical).
        tuner: A fresh, un-run tuner instance. The factory is applied in
            the parent so arbitrary (unpicklable) factories keep working —
            only the resulting tuner must pickle.
        budget: What-if call budget ``B``.
        constraints: Outcome constraints ``Γ``.
        seed: The RNG seed this cell runs under (already baked into
            ``tuner``; recorded for merge order and error messages).
        budget_policy: Optional budget-discipline name forwarded to
            :meth:`~repro.tuners.base.Tuner.tune`.
        backend: Optional cost-backend spec forwarded to
            :meth:`~repro.tuners.base.Tuner.tune` (``None`` keeps the
            config default, analytic). A :class:`BackendSpec` is plain
            primitives, so it pickles across the pool; the worker rebuilds
            the live backend locally.
    """

    label: str
    workload: Workload
    candidates: tuple[Index, ...]
    tuner: Tuner
    budget: int | None
    constraints: TuningConstraints
    seed: int
    budget_policy: str | None = None
    backend: BackendSpec | None = None


@dataclass
class SeedOutcome:
    """Scalar results of one seeded run, shipped back from a worker.

    Attributes:
        label: Roster label of the producing cell.
        seed: RNG seed of the run.
        tuner_name: ``Tuner.name`` of the algorithm that ran.
        improvement: Ground-truth percentage improvement
            (:meth:`~repro.tuners.base.TuningResult.true_improvement`,
            evaluated worker-side — uncounted, per the paper's protocol).
        calls_used: Counted what-if calls consumed.
        budget: The budget the run was given.
        seconds: Wall-clock of the ``tune()`` call in the worker.
        stop_reason: Why the budget policy halted early (``None`` = ran to
            completion).
        events: The full session event stream (validated again merge-side
            when the runtime sanitizers are enabled).
        stats: The optimizer's hot-path counters.
    """

    label: str
    seed: int
    tuner_name: str
    improvement: float
    calls_used: int
    budget: int | None
    seconds: float
    stop_reason: str | None = None
    events: list[SessionEvent] = field(default_factory=list, repr=False)
    stats: WhatIfStats | None = None

    def event_counts(self) -> dict[str, int]:
        """Events per kind for this seed (only kinds that occurred)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def as_metrics(self) -> dict:
        """The raw per-seed scalars exported to the JSON bench archive.

        :class:`~repro.eval.runner.RunRecord` aggregates across seeds
        (means for ``calls_used``/``seconds``, *sums* for event counts);
        these raw values make that aggregation reconstructible downstream.
        """
        metrics: dict = {
            "seed": self.seed,
            "improvement": self.improvement,
            "calls_used": self.calls_used,
            "seconds": self.seconds,
            "stop_reason": self.stop_reason,
            "event_counts": self.event_counts(),
        }
        if self.stats is not None:
            metrics["cache_hit_rate"] = self.stats.hit_rate
            metrics["normalized_hits"] = self.stats.normalized_hits
            metrics["cost_seconds"] = self.stats.cost_seconds
            metrics["persistent_hits"] = self.stats.persistent_hits
            metrics["speculative_priced"] = self.stats.speculative_priced
            metrics["speculation_wasted"] = self.stats.speculation_wasted
        return metrics
