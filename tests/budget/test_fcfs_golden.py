"""FCFS bit-identity: the refactored budget layer vs the pre-refactor oracle.

``tests/fixtures/fcfs_golden.json`` snapshots greedy/DTA/MCTS runs captured
before budget accounting moved out of ``WhatIfOptimizer`` into the
``repro.budget`` package. The default FCFS policy must reproduce them
exactly — configurations, float costs, ``calls_used``, checkpoint history,
and the what-if call-log layout. See ``tests/fixtures/gen_fcfs_golden.py``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_fcfs_golden", _FIXTURES / "gen_fcfs_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_GEN = _load_generator()
_GOLDEN = json.loads((_FIXTURES / "fcfs_golden.json").read_text())


@pytest.fixture(scope="module")
def workloads(tpch):
    return {"toy": _GEN.build_toy_workload(), "tpch": tpch}


@pytest.mark.parametrize(
    "label,workload_name,factory,budget,seed",
    _GEN.CASES,
    ids=[case[0] for case in _GEN.CASES],
)
def test_fcfs_matches_the_pre_refactor_oracle(
    workloads, label, workload_name, factory, budget, seed
):
    expected = _GOLDEN[label]
    result = factory(seed).tune(workloads[workload_name], budget=budget)
    snapshot = _GEN.snapshot_result(result)
    # Field-by-field for readable failures; floats compared exactly on
    # purpose — FCFS must be bit-identical, not merely close.
    assert snapshot["configuration"] == expected["configuration"]
    assert snapshot["estimated_cost"] == expected["estimated_cost"]
    assert snapshot["baseline_cost"] == expected["baseline_cost"]
    assert snapshot["calls_used"] == expected["calls_used"]
    assert snapshot["history"] == expected["history"]
    assert snapshot["call_log"] == expected["call_log"]
