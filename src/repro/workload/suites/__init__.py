"""Benchmark and "real" workload definitions used by the paper's evaluation.

Five workloads, matching Table 1:

========  ======  =========  ========  ==========  ==========  ==========
Name      Size    # Queries  # Tables  Avg #Joins  Avg #Filt.  Avg #Scans
========  ======  =========  ========  ==========  ==========  ==========
JOB       9.2 GB  33         21        7.9         2.5         8.9
TPC-H     sf=10   22         8         2.8         0.3         3.7
TPC-DS    sf=10   99         24        7.7         0.5         8.8
Real-D    587 GB  32         7,912     15.6        0.2         17
Real-M    26 GB   317        474       20.2        1.5         21.7
========  ======  =========  ========  ==========  ==========  ==========

TPC-H ships with hand-written SQL for each of the 22 templates (adapted to
the library's SELECT subset); TPC-DS, JOB, Real-D and Real-M are synthesized
over their (real or statistically-matched) schemas with profiles calibrated
to the table above. All workloads are deterministic given the registry seed.

A sixth registered workload, ``toy`` (:mod:`repro.workload.suites.toy`),
is not part of Table 1: it is the deterministic 12-query star-schema
workload the test suite and CI smoke paths run on, small enough to
materialise into a live Postgres in seconds.
"""

from repro.workload.suites.registry import available_workloads, get_workload
from repro.workload.suites.toy import toy_star_schema, toy_workload

__all__ = ["available_workloads", "get_workload", "toy_star_schema", "toy_workload"]
