"""Deprecated alias for :mod:`repro.workload.suites`.

The benchmark/suite definitions moved under the main workload namespace
(``repro.workload.suites``) so everything workload-shaped lives in one
package. This shim keeps ``repro.workloads`` (and its submodules, e.g.
``repro.workloads.tpch``) importable; it emits a :class:`DeprecationWarning`
once at import time and will be removed in a future release.
"""

import importlib
import sys
import warnings

from repro.workload.suites import available_workloads, get_workload

warnings.warn(
    "repro.workloads is deprecated; import repro.workload.suites instead",
    DeprecationWarning,
    stacklevel=2,
)

# Alias the old submodule paths to the moved modules so existing
# `from repro.workloads.tpch import ...` imports keep resolving (to the
# *same* module objects — no double definitions). The attribute is set
# too, so `repro.workloads.tpch` resolves after a plain package import.
for _name in ("job", "job_templates", "real", "registry", "tpcds", "tpch"):
    _module = importlib.import_module(f"repro.workload.suites.{_name}")
    sys.modules[f"{__name__}.{_name}"] = _module
    setattr(sys.modules[__name__], _name, _module)
del _name, _module

__all__ = ["available_workloads", "get_workload"]
