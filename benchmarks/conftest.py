"""Shared benchmark plumbing.

Every bench target runs one paper experiment exactly once (wall-clock is
reported by pytest-benchmark), prints the paper-style report, and archives
it under ``benchmarks/reports/`` so EXPERIMENTS.md can reference the rows.

Scaling knobs (environment):
    REPRO_SCALE  budget multiplier (default 0.1; 1 = the paper's grids)
    REPRO_SEEDS  seeds for stochastic algorithms (default 3; paper uses 5)
    REPRO_KS     cardinality grid (default "5,10,20")
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.experiments import ExperimentSettings

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings.from_env()


@pytest.fixture(scope="session")
def archive():
    """Callable that archives a report under benchmarks/reports/."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _archive(name: str, text: str) -> None:
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _archive


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture and return it."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
