"""Per-figure experiment definitions (the E-index of DESIGN.md).

Each function reproduces one table/figure of the paper: it assembles the
right workload, algorithm set and (K, B) grid, runs it, and returns the
records plus a formatted report printing the same rows/series the paper
plots.

Scaling: the paper's budget grids (50..1000 for JOB/TPC-H, 1000..5000 for
TPC-DS/Real-D/Real-M) are multiplied by ``REPRO_SCALE`` (default 0.1 — a
single-core-friendly run; set ``REPRO_SCALE=1`` for the full grids). The
number of MCTS seeds defaults to 3 (``REPRO_SEEDS``; the paper uses 5), and
the cardinality grid defaults to the paper's {5, 10, 20} (``REPRO_KS``).
``REPRO_JOBS`` (default 1) fans the independent (tuner, K, B, seed) cells
out to that many worker processes — records are bit-identical to a serial
run (see :mod:`repro.parallel`).

:data:`EXPERIMENTS` maps stable figure ids (``fig02`` … ``fig23``,
``table1``) to runners producing an :class:`ExperimentArtifact`; the
``python -m repro eval`` command and the benchmark archive both dispatch
through it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.backend.factory import BackendSpec
from repro.config import ABLATION_PRESETS, MCTSConfig, TuningConstraints
from repro.eval.metrics import round_series
from repro.eval.report import format_grid, format_series
from repro.eval.runner import ExperimentRunner, RunRecord, TunerFactory
from repro.eval.timemodel import WhatIfTimeModel
from repro.exceptions import TuningError
from repro.rng import DEFAULT_SEED, spawn_seeds
from repro.tuners import (
    AutoAdminGreedyTuner,
    DBABanditTuner,
    DTATuner,
    MCTSTuner,
    NoDBATuner,
    TwoPhaseGreedyTuner,
    VanillaGreedyTuner,
)
from repro.workload.analysis import bind_query
from repro.workload.suites import get_workload

#: Paper budget grids.
LARGE_BUDGETS = [1000, 2000, 3000, 4000, 5000]
SMALL_BUDGETS = [50, 100, 200, 500, 1000]

#: Workloads using the small budget grid.
_SMALL_GRID = {"tpch", "job"}


@dataclass(frozen=True)
class ExperimentSettings:
    """Environment-derived experiment scaling.

    Attributes:
        scale: Budget multiplier (``REPRO_SCALE``); 1.0 = paper grids.
        seeds: MCTS/stochastic seed count (``REPRO_SEEDS``); paper uses 5.
        k_values: Cardinality grid (``REPRO_KS``).
        jobs: Worker processes for grid execution (``REPRO_JOBS``); 1 runs
            serially, N > 1 is bit-identical but concurrent.
        backend: Cost-backend name the grids run against
            (``REPRO_BACKEND``); ``"analytic"`` is the exact engine. The
            ``record`` backend is single-session and rejected by the
            runner.
        noise: Noise scale σ for the noisy backend (``REPRO_NOISE``).
        noise_seed: Perturbation seed for the noisy backend
            (``REPRO_NOISE_SEED``).
        pg_dsn: Connection string for the postgres backend
            (``REPRO_PG_DSN``).
        pg_schema: Schema namespace for the postgres backend
            (``REPRO_PG_SCHEMA``).
        pricing_jobs: Concurrent pricing workers inside each grid cell
            (``REPRO_PRICING_JOBS``); records are bit-identical to serial
            pricing at any value.
        whatif_cache: Persistent cross-session what-if cache directory
            (``REPRO_WHATIF_CACHE``); ``None`` disables. Never changes
            costs or budget accounting.
    """

    scale: float = 0.1
    seeds: int = 3
    k_values: tuple[int, ...] = (5, 10, 20)
    jobs: int = 1
    backend: str = "analytic"
    noise: float = 0.1
    noise_seed: int = 0
    pg_dsn: str | None = None
    pg_schema: str | None = None
    pricing_jobs: int = 1
    whatif_cache: str | None = None

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        scale = float(os.environ.get("REPRO_SCALE", "0.1"))
        seeds = int(os.environ.get("REPRO_SEEDS", "3"))
        ks_raw = os.environ.get("REPRO_KS", "5,10,20")
        ks = tuple(int(k) for k in ks_raw.split(",") if k.strip())
        jobs = max(1, int(os.environ.get("REPRO_JOBS", "1")))
        return cls(
            scale=scale,
            seeds=seeds,
            k_values=ks,
            jobs=jobs,
            backend=os.environ.get("REPRO_BACKEND", "analytic"),
            noise=float(os.environ.get("REPRO_NOISE", "0.1")),
            noise_seed=int(os.environ.get("REPRO_NOISE_SEED", "0")),
            pg_dsn=os.environ.get("REPRO_PG_DSN") or None,
            pg_schema=os.environ.get("REPRO_PG_SCHEMA") or None,
            pricing_jobs=max(1, int(os.environ.get("REPRO_PRICING_JOBS", "1"))),
            whatif_cache=os.environ.get("REPRO_WHATIF_CACHE") or None,
        )

    def backend_spec(self) -> BackendSpec | None:
        """The backend selection for grid cells (``None`` = analytic).

        ``None`` (rather than an analytic spec) keeps the default path
        byte-identical with pre-backend archives. Concurrent pricing or a
        persistent cache forces an explicit spec even for the analytic
        backend — both are non-semantic, so the records stay identical.
        """
        if (
            self.backend == "analytic"
            and self.pricing_jobs <= 1
            and self.whatif_cache is None
        ):
            return None
        return BackendSpec(
            name=self.backend,
            noise=self.noise,
            noise_seed=self.noise_seed,
            pg_dsn=self.pg_dsn,
            pg_schema=self.pg_schema,
            pricing_jobs=self.pricing_jobs,
            whatif_cache=self.whatif_cache,
        )

    def budgets_for(self, workload_name: str) -> list[int]:
        grid = SMALL_BUDGETS if workload_name in _SMALL_GRID else LARGE_BUDGETS
        return [max(10, int(b * self.scale)) for b in grid]

    def workload(self, name: str):
        """The (structurally scaled) workload for these settings."""
        return get_workload(name, scale=max(0.05, self.scale))

    def seed_list(self) -> list[int]:
        return spawn_seeds(DEFAULT_SEED, max(1, self.seeds))


# --------------------------------------------------------------------- #
# algorithm rosters
# --------------------------------------------------------------------- #


def greedy_roster() -> dict[str, tuple[TunerFactory, bool]]:
    """Figure 8-10/16-17 roster: three greedy baselines + MCTS."""
    return {
        "vanilla_greedy": (lambda seed: VanillaGreedyTuner(), False),
        "two_phase_greedy": (lambda seed: TwoPhaseGreedyTuner(), False),
        "autoadmin_greedy": (lambda seed: AutoAdminGreedyTuner(), False),
        "mcts": (lambda seed: MCTSTuner(seed=seed), True),
    }


def rl_roster() -> dict[str, tuple[TunerFactory, bool]]:
    """Figure 11-13/18-19 roster: existing RL approaches + MCTS."""
    return {
        "dba_bandits": (lambda seed: DBABanditTuner(seed=seed), True),
        "no_dba": (lambda seed: NoDBATuner(seed=seed), True),
        "mcts": (lambda seed: MCTSTuner(seed=seed), True),
    }


def dta_roster() -> dict[str, tuple[TunerFactory, bool]]:
    """Figure 15/20 roster: DTA simulation + MCTS."""
    return {
        "dta": (lambda seed: DTATuner(), False),
        "mcts": (lambda seed: MCTSTuner(seed=seed), True),
    }


class _NamedMCTS(MCTSTuner):
    """MCTS tuner whose report name reflects its policy combination."""

    def __init__(self, config: MCTSConfig, seed: int):
        super().__init__(config=config, seed=seed)
        selection = "uct" if config.selection_policy == "uct" else "prior"
        extraction = "greedy" if config.extraction == "bg" else "only"
        self.name = f"{selection}_{extraction}"


# --------------------------------------------------------------------- #
# experiments
# --------------------------------------------------------------------- #


def table1_workload_statistics(settings: ExperimentSettings | None = None) -> str:
    """E-T1 — Table 1: database and workload statistics."""
    settings = settings or ExperimentSettings.from_env()
    lines = [
        "Table 1: database and workload statistics (paper values in parens)",
        f"{'name':8s} {'size':>10s} {'#queries':>9s} {'#tables':>8s} "
        f"{'avg#joins':>10s} {'avg#filters':>12s} {'avg#scans':>10s}",
    ]
    paper = {
        "job": ("9.2GB", 33, 21, 7.9, 2.5, 8.9),
        "tpch": ("sf=10", 22, 8, 2.8, 0.3, 3.7),
        "tpcds": ("sf=10", 99, 24, 7.7, 0.5, 8.8),
        "real_d": ("587GB", 32, 7912, 15.6, 0.2, 17.0),
        "real_m": ("26GB", 317, 474, 20.2, 1.5, 21.7),
    }
    for name in ("job", "tpch", "tpcds", "real_d", "real_m"):
        workload = settings.workload(name)
        joins = filters = scans = 0
        for query in workload:
            bound = bind_query(workload.schema, query.statement, query.qid)
            joins += bound.num_joins
            filters += bound.num_filters
            scans += bound.num_scans
        count = len(workload)
        size_gb = workload.schema.total_size_bytes / 1e9
        p = paper[name]
        lines.append(
            f"{name:8s} {size_gb:8.1f}GB {count:9d} {len(workload.schema.tables):8d} "
            f"{joins / count:10.1f} {filters / count:12.1f} {scans / count:10.1f}"
            f"   (paper: {p[0]}, {p[1]}q, {p[2]}t, {p[3]}, {p[4]}, {p[5]})"
        )
    return "\n".join(lines)


def figure2_whatif_time(settings: ExperimentSettings | None = None) -> tuple[list, str]:
    """E-F2 — Figure 2: what-if share of TPC-DS tuning time, K=20."""
    settings = settings or ExperimentSettings.from_env()
    workload = settings.workload("tpcds")
    model = WhatIfTimeModel(workload)
    budgets = settings.budgets_for("tpcds")
    runner = ExperimentRunner(
        workload,
        seeds=settings.seed_list(),
        keep_results=False,
        parallel=settings.jobs,
    )
    constraints = TuningConstraints(max_indexes=20)
    records = runner.run_budget_sweep(
        lambda seed: VanillaGreedyTuner(),
        budgets,
        constraints,
        stochastic=False,
        backend=settings.backend_spec(),
    )
    rows = []
    lines = [
        "Figure 2: TPC-DS tuning time decomposition (greedy, K=20)",
        f"  {'budget':>8s} {'whatif_min':>11s} {'other_min':>10s} {'whatif_share':>13s}",
    ]
    for budget, record in zip(budgets, records, strict=True):
        breakdown = model.breakdown(int(record.calls_used))
        rows.append((budget, breakdown))
        lines.append(
            f"  {budget:8d} {breakdown.whatif_seconds / 60:11.1f} "
            f"{breakdown.other_seconds / 60:10.1f} {breakdown.whatif_fraction:12.1%}"
        )
    lines.append("  (paper: what-if calls take ~75-93% of tuning time)")
    return rows, "\n".join(lines)


def _grid_experiment(
    workload_name: str,
    roster: dict[str, tuple[TunerFactory, bool]],
    settings: ExperimentSettings,
    title: str,
    max_storage_bytes: int | None = None,
) -> tuple[list[RunRecord], str]:
    workload = settings.workload(workload_name)
    runner = ExperimentRunner(
        workload,
        seeds=settings.seed_list(),
        keep_results=False,
        parallel=settings.jobs,
    )
    budgets = settings.budgets_for(workload_name)
    records = runner.run_grid(
        roster,
        budgets,
        list(settings.k_values),
        max_storage_bytes,
        backend=settings.backend_spec(),
    )
    model = WhatIfTimeModel(workload)
    minutes = {b: model.minutes_for_budget(b) for b in budgets}
    return records, format_grid(records, title, minute_labels=minutes)


def greedy_comparison(
    workload_name: str, settings: ExperimentSettings | None = None
) -> tuple[list[RunRecord], str]:
    """E-F8/9/10/16/17: budget-aware greedy variants vs MCTS."""
    settings = settings or ExperimentSettings.from_env()
    figure = {
        "tpcds": "Figure 8",
        "real_d": "Figure 9",
        "real_m": "Figure 10",
        "job": "Figure 16",
        "tpch": "Figure 17",
    }.get(workload_name, "greedy comparison")
    return _grid_experiment(
        workload_name,
        greedy_roster(),
        settings,
        f"{figure}: {workload_name} — budget-aware greedy variants vs MCTS",
    )


def rl_comparison(
    workload_name: str, settings: ExperimentSettings | None = None
) -> tuple[list[RunRecord], str]:
    """E-F11/12/13/18/19: existing RL approaches vs MCTS."""
    settings = settings or ExperimentSettings.from_env()
    figure = {
        "tpcds": "Figure 11",
        "real_d": "Figure 12",
        "real_m": "Figure 13",
        "job": "Figure 18",
        "tpch": "Figure 19",
    }.get(workload_name, "RL comparison")
    return _grid_experiment(
        workload_name,
        rl_roster(),
        settings,
        f"{figure}: {workload_name} — existing RL approaches vs MCTS",
    )


def dta_comparison(
    workload_name: str,
    settings: ExperimentSettings | None = None,
    storage_constraint: bool = False,
) -> tuple[list[RunRecord], str]:
    """E-F15/20: DTA vs MCTS, with or without the storage constraint.

    The storage constraint follows DTA's default: 3× the database size.
    """
    settings = settings or ExperimentSettings.from_env()
    workload = settings.workload(workload_name)
    sc_bytes = 3 * workload.schema.total_size_bytes if storage_constraint else None
    figure = {
        "tpcds": "Figure 15(a/d)",
        "real_d": "Figure 15(b/e)",
        "real_m": "Figure 15(c/f)",
        "job": "Figure 20(a)",
        "tpch": "Figure 20(b/c)",
    }.get(workload_name, "DTA comparison")
    sc_label = "with SC (3x db size)" if storage_constraint else "without SC"
    return _grid_experiment(
        workload_name,
        dta_roster(),
        settings,
        f"{figure}: {workload_name} — DTA vs MCTS, {sc_label}",
        max_storage_bytes=sc_bytes,
    )


def convergence(
    workload_name: str,
    max_indexes: int = 10,
    settings: ExperimentSettings | None = None,
) -> tuple[dict[str, list[tuple[int, float]]], str]:
    """E-F14/21: per-round convergence of DBA bandits, No DBA and MCTS."""
    settings = settings or ExperimentSettings.from_env()
    workload = settings.workload(workload_name)
    budget = settings.budgets_for(workload_name)[-1]
    constraints = TuningConstraints(max_indexes=max_indexes)
    runner = ExperimentRunner(workload, seeds=settings.seed_list()[:1])
    calls_per_round = len(workload)

    series: dict[str, list[tuple[int, float]]] = {}
    for label, (factory, stochastic) in rl_roster().items():
        record = runner.run_cell(
            factory,
            budget,
            constraints,
            stochastic=False,
            backend=settings.backend_spec(),
        )
        result = record.results[0]
        if label == "mcts":
            # The paper shows MCTS as a flat reference line (its average
            # final improvement); keep the same presentation.
            rounds = max(1, -(-result.calls_used // calls_per_round))
            final = result.true_improvement()
            series[label] = [(r, final) for r in (1, rounds)]
        else:
            series[label] = round_series(result, calls_per_round)

    figure = "Figure 14" if workload_name in ("tpcds", "real_d", "real_m") else "Figure 21"
    text = format_series(
        f"{figure}: {workload_name} convergence, K={max_indexes}, B={budget} "
        f"(round = {calls_per_round} what-if calls)",
        series,
    )
    return series, text


def ablation(
    workload_name: str,
    rollout_policy: str,
    settings: ExperimentSettings | None = None,
) -> tuple[list[RunRecord], str]:
    """E-F22/23: MCTS policy ablations with fixed / randomized rollout step."""
    settings = settings or ExperimentSettings.from_env()

    roster: dict[str, tuple[TunerFactory, bool]] = {}
    for name, preset in ABLATION_PRESETS.items():
        config = MCTSConfig(
            selection_policy=preset.selection_policy,
            use_priors=preset.use_priors,
            extraction=preset.extraction,
            rollout_policy=rollout_policy,
        )
        roster[name] = (
            (lambda seed, c=config: _NamedMCTS(c, seed)),
            True,
        )

    figure = "Figure 22" if rollout_policy == "myopic" else "Figure 23"
    step = "fixed step 0" if rollout_policy == "myopic" else "randomized step"
    return _grid_experiment(
        workload_name,
        roster,
        settings,
        f"{figure}: {workload_name} — MCTS policy ablation ({step} rollout)",
    )


#: Noise scales σ for the robustness sweep (σ = 0 is the analytic engine).
NOISE_GRID = (0.0, 0.1, 0.2, 0.4)


def robustness(
    workload_name: str = "tpch",
    settings: ExperimentSettings | None = None,
) -> tuple[list[RunRecord], dict[str, list[tuple[float, float]]], str]:
    """E-R1 — robustness: tuner degradation under what-if cost error.

    Re-runs a greedy / DTA / MCTS roster with the noisy backend at
    increasing noise scales σ (multiplicative log-normal error on every
    fresh what-if pricing; see
    :class:`~repro.backend.noisy.NoisyBackend`). The reported improvement
    stays *ground truth* — ``true_cost`` bypasses the perturbation — so the
    series shows how much each search strategy's final configuration decays
    when its guidance signal is wrong, not how wrong the signal is.
    """
    settings = settings or ExperimentSettings.from_env()
    workload = settings.workload(workload_name)
    runner = ExperimentRunner(
        workload,
        seeds=settings.seed_list(),
        keep_results=False,
        parallel=settings.jobs,
    )
    budget = settings.budgets_for(workload_name)[-1]
    constraints = TuningConstraints(max_indexes=10)
    roster: dict[str, tuple[TunerFactory, bool]] = {
        "vanilla_greedy": (lambda seed: VanillaGreedyTuner(), False),
        "dta": (lambda seed: DTATuner(), False),
        "mcts": (lambda seed: MCTSTuner(seed=seed), True),
    }

    records: list[RunRecord] = []
    series: dict[str, list[tuple[float, float]]] = {}
    for label, (factory, stochastic) in roster.items():
        points: list[tuple[float, float]] = []
        for noise in NOISE_GRID:
            backend = (
                None
                if noise <= 0.0
                else BackendSpec(
                    name="noisy",
                    noise=noise,
                    noise_seed=settings.noise_seed,
                    pricing_jobs=settings.pricing_jobs,
                    whatif_cache=settings.whatif_cache,
                )
            )
            record = runner.run_cell(
                factory, budget, constraints, stochastic=stochastic, backend=backend
            )
            records.append(record)
            points.append((noise, record.improvement_mean))
        series[label] = points

    lines = [
        f"Robustness: {workload_name} — true improvement under what-if "
        f"cost error (K={constraints.max_indexes}, B={budget})",
        f"  {'noise σ':>8s}" + "".join(f"{label:>16s}" for label in series),
    ]
    lines.append("  " + "-" * (len(lines[-1]) - 2))
    for i, noise in enumerate(NOISE_GRID):
        cells = "".join(f"{series[label][i][1]:16.1f}" for label in series)
        lines.append(f"  {noise:8.2f}" + cells)
    lines.append(
        "  (σ = 0 is the exact analytic engine; improvements are always "
        "evaluated noise-free)"
    )
    return records, series, "\n".join(lines)


# --------------------------------------------------------------------- #
# experiment registry (the ``python -m repro eval`` dispatch table)
# --------------------------------------------------------------------- #


@dataclass
class ExperimentArtifact:
    """One experiment's outputs in archive-ready form.

    Attributes:
        figure: The registry id that produced it.
        text: The paper-style text report.
        records: Flat grid records (empty for series-only experiments).
        series: JSON-ready non-grid data (convergence series, the Figure 2
            time decomposition, …); ``None`` when the experiment is purely
            a record grid.
    """

    figure: str
    text: str
    records: list[RunRecord] = field(default_factory=list)
    series: dict | None = None


def _run_table1(settings: ExperimentSettings) -> ExperimentArtifact:
    return ExperimentArtifact("table1", table1_workload_statistics(settings))


def _run_fig02(settings: ExperimentSettings) -> ExperimentArtifact:
    rows, text = figure2_whatif_time(settings)
    series = {
        "whatif_share": [
            {
                "budget": budget,
                "whatif_seconds": breakdown.whatif_seconds,
                "other_seconds": breakdown.other_seconds,
                "whatif_fraction": breakdown.whatif_fraction,
            }
            for budget, breakdown in rows
        ]
    }
    return ExperimentArtifact("fig02", text, series=series)


def _grid_entry(figure: str, fn, workload_name: str):
    def run(settings: ExperimentSettings) -> ExperimentArtifact:
        records, text = fn(workload_name, settings)
        return ExperimentArtifact(figure, text, records=records)

    return run


def _dta_entry(figure: str, variants: list[tuple[str, bool]]):
    def run(settings: ExperimentSettings) -> ExperimentArtifact:
        records: list[RunRecord] = []
        texts: list[str] = []
        for workload_name, storage_constraint in variants:
            sub, text = dta_comparison(
                workload_name, settings, storage_constraint=storage_constraint
            )
            records.extend(sub)
            texts.append(text)
        return ExperimentArtifact(figure, "\n\n".join(texts), records=records)

    return run


def _convergence_entry(figure: str, workload_name: str, max_indexes: int):
    def run(settings: ExperimentSettings) -> ExperimentArtifact:
        series, text = convergence(workload_name, max_indexes, settings)
        return ExperimentArtifact(
            figure,
            text,
            series={label: [list(point) for point in points] for label, points in series.items()},
        )

    return run


def _run_robustness(settings: ExperimentSettings) -> ExperimentArtifact:
    records, series, text = robustness("tpch", settings)
    return ExperimentArtifact(
        "robustness",
        text,
        records=records,
        series={
            label: [list(point) for point in points]
            for label, points in series.items()
        },
    )


def _ablation_entry(figure: str, workload_name: str, rollout_policy: str):
    def run(settings: ExperimentSettings) -> ExperimentArtifact:
        records, text = ablation(workload_name, rollout_policy, settings)
        return ExperimentArtifact(figure, text, records=records)

    return run


#: Stable experiment ids → artifact runners. Multi-panel figures run their
#: primary panel(s): fig14 is the TPC-DS panel, fig21 the TPC-H panel,
#: fig15 TPC-DS with and without the storage constraint, fig20 the paper's
#: three (workload, SC) combinations, fig22/fig23 the TPC-H panel.
EXPERIMENTS: dict[str, Callable[[ExperimentSettings], ExperimentArtifact]] = {
    "table1": _run_table1,
    "fig02": _run_fig02,
    "fig08": _grid_entry("fig08", greedy_comparison, "tpcds"),
    "fig09": _grid_entry("fig09", greedy_comparison, "real_d"),
    "fig10": _grid_entry("fig10", greedy_comparison, "real_m"),
    "fig11": _grid_entry("fig11", rl_comparison, "tpcds"),
    "fig12": _grid_entry("fig12", rl_comparison, "real_d"),
    "fig13": _grid_entry("fig13", rl_comparison, "real_m"),
    "fig14": _convergence_entry("fig14", "tpcds", 10),
    "fig15": _dta_entry("fig15", [("tpcds", True), ("tpcds", False)]),
    "fig16": _grid_entry("fig16", greedy_comparison, "job"),
    "fig17": _grid_entry("fig17", greedy_comparison, "tpch"),
    "fig18": _grid_entry("fig18", rl_comparison, "job"),
    "fig19": _grid_entry("fig19", rl_comparison, "tpch"),
    "fig20": _dta_entry(
        "fig20", [("job", False), ("tpch", True), ("tpch", False)]
    ),
    "fig21": _convergence_entry("fig21", "tpch", 10),
    "fig22": _ablation_entry("fig22", "tpch", "myopic"),
    "fig23": _ablation_entry("fig23", "tpch", "random"),
    "robustness": _run_robustness,
}


def run_experiment(
    figure: str, settings: ExperimentSettings | None = None
) -> ExperimentArtifact:
    """Run one registered experiment by id (see :data:`EXPERIMENTS`)."""
    if figure not in EXPERIMENTS:
        raise TuningError(
            f"unknown experiment {figure!r}; available: {sorted(EXPERIMENTS)}"
        )
    settings = settings or ExperimentSettings.from_env()
    return EXPERIMENTS[figure](settings)

