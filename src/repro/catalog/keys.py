"""Primary/foreign key metadata forming the schema's join graph.

The query synthesiser walks this graph to produce realistic multi-join
queries, and the selectivity estimator uses key information to recognise
key/foreign-key joins (whose output cardinality equals the foreign side).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CatalogError


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``child.child_column -> parent.parent_column``.

    Attributes:
        child_table: Referencing (fact) table name.
        child_column: Referencing column name.
        parent_table: Referenced (dimension) table name.
        parent_column: Referenced column name, assumed unique in the parent.
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def __post_init__(self) -> None:
        if self.child_table == self.parent_table:
            raise CatalogError(
                f"self-referencing foreign key on {self.child_table!r} is not supported"
            )

    def touches(self, table: str) -> bool:
        """Return whether either endpoint is ``table``."""
        return table in (self.child_table, self.parent_table)

    def endpoint(self, table: str) -> tuple[str, str]:
        """Return ``(table, column)`` for the endpoint on ``table``.

        Raises:
            CatalogError: If ``table`` is not an endpoint of this key.
        """
        if table == self.child_table:
            return (self.child_table, self.child_column)
        if table == self.parent_table:
            return (self.parent_table, self.parent_column)
        raise CatalogError(f"foreign key {self} does not touch table {table!r}")

    def other(self, table: str) -> tuple[str, str]:
        """Return the ``(table, column)`` endpoint opposite ``table``."""
        if table == self.child_table:
            return (self.parent_table, self.parent_column)
        if table == self.parent_table:
            return (self.child_table, self.child_column)
        raise CatalogError(f"foreign key {self} does not touch table {table!r}")
