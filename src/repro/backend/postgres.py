"""Live Postgres/HypoPG what-if backend.

The first backend whose costs come from outside the process: queries are
priced by a real query optimizer over *hypothetical* indexes, exactly the
operation whose expense motivates the paper's budget accounting. The
backend subclasses the analytic engine, so caching, relevant-index
normalization, budget metering, observers, events, and
:class:`~repro.optimizer.whatif.WhatIfStats` are all inherited unchanged —
only the single pricing seam (:meth:`PostgresBackend._evaluate` plus the
batched :meth:`PostgresBackend._price_batch`) talks to the server:

1. sync the connection's HypoPG hypothetical indexes to the normalized
   configuration (diffed, not rebuilt — see
   :class:`~repro.backend.dbms.hypo.HypoIndexState`);
2. ``EXPLAIN (FORMAT JSON)`` the query and read the root plan's
   ``Total Cost``.

Connections come from a lazy pool (nothing opens in ``__init__``, so the
backend never smuggles a socket into a pickled spec), transient
connection errors retry with backoff on a fresh connection, and
:meth:`PostgresBackend.close` runs ``hypopg_reset`` on every pooled
connection before closing it.

Passing ``trace_path`` records every fresh pricing in the shared JSONL
trace format, so a CI-recorded Postgres session replays bit-identically
through :class:`~repro.backend.replay.ReplayBackend` with zero live
connections (and zero ``psycopg`` imports).
"""

from __future__ import annotations

import os
from pathlib import Path
from time import perf_counter
from typing import Callable

from repro.backend.analytic import AnalyticBackend
from repro.backend.dbms.connection import ConnectionPool, require_psycopg, with_retry
from repro.backend.dbms.explain import PostgresPlan, parse_plan, plan_total_cost
from repro.backend.dbms.hypo import HypoIndexState
from repro.backend.trace import TraceHeader, TraceKey, canonical_key, write_trace
from repro.catalog import Index
from repro.exceptions import OptimizerError, TuningError
from repro.optimizer.prepared import PreparedQuery
from repro.optimizer.whatif import config_key
from repro.workload.query import Query

#: Per-connection setup: planner determinism (the toy/TPC-H suites never
#: reach the GEQO join-count threshold, but a deterministic planner is a
#: conformance requirement, not a hope).
_SESSION_SETUP = ("SET geqo TO off",)


class PostgresSession:
    """One live connection plus its hypothetical-index state.

    Connection-shaped (``cursor()``/``close()``) so it can live directly
    in a :class:`~repro.backend.dbms.connection.ConnectionPool`; the pool
    parks sessions, and the per-session :class:`HypoIndexState` keeps the
    hypothetical-index cache aligned with the connection it belongs to.
    """

    def __init__(self, conn):
        self._conn = conn
        self.hypo = HypoIndexState()

    def cursor(self):
        return self._conn.cursor()

    def close(self) -> None:
        self._conn.close()

    def _explain_json(self, sql: str, key: frozenset[Index]):
        self.hypo.sync(self, key)
        with self.cursor() as cur:
            cur.execute("EXPLAIN (FORMAT JSON) " + sql)
            row = cur.fetchone()
        if row is None:
            raise OptimizerError("EXPLAIN returned no rows")
        return row[0]

    def cost(self, sql: str, key: frozenset[Index]) -> float:
        """Price ``sql`` under hypothetical configuration ``key``."""
        return plan_total_cost(self._explain_json(sql, key))

    def plan(self, sql: str, key: frozenset[Index]) -> PostgresPlan:
        """The full hypothetical plan for ``sql`` under ``key``."""
        return parse_plan(self._explain_json(sql, key))

    def reset(self) -> None:
        """Drop this connection's hypothetical indexes (``hypopg_reset``)."""
        self.hypo.reset(self)


def _versions(session: PostgresSession) -> dict[str, str]:
    with session.cursor() as cur:
        cur.execute("SHOW server_version")
        row = cur.fetchone()
        server = "" if row is None else str(row[0])
        cur.execute("SELECT extversion FROM pg_extension WHERE extname = 'hypopg'")
        row = cur.fetchone()
        hypopg = "" if row is None or row[0] is None else str(row[0])
    return {"server_version": server, "hypopg_version": hypopg}


def postgres_provenance(
    dsn: str,
    *,
    schema: str | None = None,
    connector: Callable[[str], object] | None = None,
) -> dict[str, str]:
    """Server and hypopg versions at ``dsn`` — BENCH payload provenance."""
    pool = ConnectionPool(
        dsn, schema=schema, connect=_session_opener(connector), setup=_SESSION_SETUP
    )
    try:
        with pool.session() as session:
            return _versions(session)
    finally:
        pool.close_all()


def _session_opener(
    connector: Callable[[str], object] | None,
) -> Callable[[str], PostgresSession]:
    """``connect(dsn) -> PostgresSession`` over a raw connector (or psycopg)."""

    def open_session(dsn: str) -> PostgresSession:
        if connector is not None:
            return PostgresSession(connector(dsn))
        psycopg = require_psycopg()
        return PostgresSession(psycopg.connect(dsn, autocommit=True))

    return open_session


class PostgresBackend(AnalyticBackend):
    """What-if costing against a live Postgres with HypoPG.

    Args:
        workload: The workload being tuned. Query SQL is shipped verbatim
            to ``EXPLAIN``; the synthesizer emits Postgres-executable SQL
            and the TPC-H-style suites follow the same dialect.
        pg_dsn: Connection string; falls back to ``REPRO_PG_DSN``.
        pg_schema: Optional schema (``search_path``) holding the tables.
        trace_path: When given, record every fresh pricing to this JSONL
            trace (same format as the ``record`` backend) so the session
            replays offline through the ``replay`` backend.
        connector: Injectable ``connect(dsn) -> connection`` callable for
            tests; when given, the ``psycopg`` import gate is skipped.
        retries: Transient-connection-error retries per pricing operation.
        backoff: Initial retry backoff in seconds (doubles per retry).
        transient: Exception types treated as transient; defaults to the
            driver's connection-level errors.
        **kwargs: Engine knobs forwarded to the analytic base (budget or
            policy, normalize_cache, events, ...).

    Raises:
        TuningError: When no DSN is configured.
        BackendUnavailableError: When ``psycopg`` is not installed (and
            no test connector is injected).
    """

    name = "postgres"

    #: A real optimizer does not promise Assumption 1 — an extra
    #: hypothetical index can change row-estimate arithmetic enough to
    #: raise the estimated cost — so the monotonicity sanitizer (and the
    #: conformance monotonicity test) must not be armed on this backend.
    monotonic = False

    def __init__(
        self,
        workload,
        *args,
        pg_dsn: str | None = None,
        pg_schema: str | None = None,
        trace_path: str | Path | None = None,
        connector: Callable[[str], object] | None = None,
        retries: int = 2,
        backoff: float = 0.05,
        transient: tuple[type[BaseException], ...] | None = None,
        **kwargs,
    ):
        super().__init__(workload, *args, **kwargs)
        dsn = pg_dsn or os.environ.get("REPRO_PG_DSN") or None
        if not dsn:
            raise TuningError(
                "postgres backend needs a connection string: pass --pg-dsn "
                "(BackendSpec.pg_dsn) or set REPRO_PG_DSN"
            )
        if connector is None:
            # Fail at construction, not at the first pricing five layers in.
            require_psycopg()
        self._pool = ConnectionPool(
            dsn,
            schema=pg_schema,
            connect=_session_opener(connector),
            setup=_SESSION_SETUP,
        )
        self._pg_schema = pg_schema
        self._retries = retries
        self._backoff = backoff
        self._transient = transient
        self._sql = {query.qid: query.sql for query in workload}
        self._pg_trace_path = Path(trace_path) if trace_path else None
        self._recorded: dict[tuple[str, TraceKey], float] = {}
        self._saved = True

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #

    @property
    def dsn(self) -> str:
        return self._pool.dsn

    @property
    def pool(self) -> ConnectionPool:
        """The connection pool (exposed for observability in tests)."""
        return self._pool

    def _run(self, fn: Callable[[PostgresSession], object]):
        """Run ``fn(session)`` on a pooled session, retrying transients.

        A failed attempt discards its connection (the pool does this on
        any in-session exception), so each retry reconnects from scratch
        with an empty hypothetical-index set.
        """

        def attempt():
            with self._pool.session() as session:
                return fn(session)

        return with_retry(
            attempt,
            retries=self._retries,
            backoff=self._backoff,
            transient=self._transient,
        )

    def server_info(self) -> dict[str, str]:
        """Server/extension versions (BENCH provenance, live-test guard)."""
        return self._run(_versions)

    # ------------------------------------------------------------------ #
    # the pricing seam
    # ------------------------------------------------------------------ #

    def _record(self, qid: str, key: frozenset[Index], cost: float) -> None:
        if self._pg_trace_path is not None:
            self._recorded[(qid, canonical_key(key))] = cost
            self._saved = False

    def _on_recalled(self, qid: str, key: frozenset[Index], cost: float) -> None:
        # A persistent-cache hit skips _evaluate; mirror it into the trace
        # so a warm-cache recorded session still replays completely.
        self._record(qid, key, cost)

    def cache_identity(self) -> dict:
        """Extend the shard key with server-side pricing identity.

        Costs come from the live planner, so the DSN (hashed — it may
        carry credentials), the schema, and the server/hypopg versions all
        key the shard file: a server upgrade or a different database lands
        in a fresh shard instead of serving stale plans' costs.
        """
        from repro.backend.cache import stable_digest

        identity = super().cache_identity()
        identity["dsn"] = stable_digest(self._pool.dsn)[:16]
        identity["schema"] = self._pg_schema or ""
        identity.update(self.server_info())
        return identity

    def _evaluate(self, prepared: PreparedQuery, key: frozenset[Index]) -> float:
        sql = self._sql[prepared.qid]
        cost = self._run(lambda session: session.cost(sql, key))
        self._record(prepared.qid, key, cost)
        return cost

    def _price_shard(
        self, shard: list[tuple[str, PreparedQuery, frozenset[Index]]]
    ) -> list[float]:
        """Price one speculative wave shard on a single pooled session.

        Concurrent shards borrow distinct pooled connections, so EXPLAIN
        round-trips overlap on the server; within a shard, pairs are
        grouped by (normalized) configuration so each hypothetical-index
        set is synced once. Runs on a worker thread: the only side effect
        is trace recording via per-pair GIL-atomic dict writes — stats,
        budget, and cache commits stay with the serial commit loop.
        """
        groups: dict[frozenset[Index], list[int]] = {}
        for position, (_, _, norm) in enumerate(shard):
            groups.setdefault(norm, []).append(position)
        costs: list[float] = [0.0] * len(shard)

        def price_all(session: PostgresSession) -> None:
            for norm, positions in groups.items():
                for position in positions:
                    qid, _, _ = shard[position]
                    costs[position] = session.cost(self._sql[qid], norm)

        self._run(price_all)
        for (qid, _, norm), cost in zip(shard, costs, strict=True):
            self._record(qid, norm, cost)
        return costs

    def _price_batch(
        self, pending: list[tuple[str, PreparedQuery, frozenset[Index]]]
    ) -> list[float]:
        """Price a prefetch batch in one connection round-trip.

        Pairs are grouped by their (already normalized) configuration so
        each distinct hypothetical-index set is synced exactly once per
        batch; every query under it is then EXPLAINed on the same
        connection. Costs are returned in issue order — the caller
        commits them to the cache/log in that order, so layouts stay
        pool-size- and grouping-invariant.
        """
        self._stats.batch_calls += 1
        self._stats.batched_pairs += len(pending)
        costs: list[float] = [0.0] * len(pending)
        misses = list(range(len(pending)))
        if self._whatif_cache is not None:
            misses = []
            for position, (qid, _, norm) in enumerate(pending):
                recalled = self._recall(qid, norm)
                if recalled is None:
                    misses.append(position)
                else:
                    costs[position] = recalled
        if misses:
            groups: dict[frozenset[Index], list[int]] = {}
            for position in misses:
                groups.setdefault(pending[position][2], []).append(position)

            def price_all(session: PostgresSession) -> None:
                for norm, positions in groups.items():
                    for position in positions:
                        qid, _, _ = pending[position]
                        costs[position] = session.cost(self._sql[qid], norm)

            start = perf_counter()
            self._run(price_all)
            self._stats.cost_seconds += perf_counter() - start
            for position in misses:
                qid, _, norm = pending[position]
                self._record(qid, norm, costs[position])
                self._store(qid, norm, costs[position])
        self._stats.cost_evaluations += len(pending)
        return costs

    def explain(self, query: Query, configuration) -> PostgresPlan:
        """The live hypothetical plan behind a what-if cost (uncounted)."""
        key = config_key(configuration)
        norm = self._norm_key(self.prepared(query), key) if key else key
        sql = self._sql[query.qid]
        return self._run(lambda session: session.plan(sql, norm))

    # ------------------------------------------------------------------ #
    # trace recording (composes with the replay backend)
    # ------------------------------------------------------------------ #

    @property
    def trace_path(self) -> Path | None:
        """Trace destination, or ``None`` when not recording."""
        return self._pg_trace_path

    @property
    def recorded_pairs(self) -> int:
        """Distinct (query, configuration) costs captured so far."""
        return len(self._recorded)

    def save_trace(self) -> int:
        """Write the recorded trace; returns the number of cost lines."""
        if self._pg_trace_path is None:
            raise TuningError(
                "postgres backend was built without trace_path; "
                "pass --backend-trace to record a replayable session"
            )
        header = TraceHeader(
            workload=self._workload.name,
            queries=len(self._workload),
            normalize_cache=self.normalize_cache,
        )
        written = write_trace(self._pg_trace_path, header, self._recorded)
        self._saved = True
        return written

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush the trace, ``hypopg_reset`` pooled sessions, close them."""
        if self._pg_trace_path is not None and not self._saved:
            self.save_trace()
        self._pool.close_all(finalize=_reset_session)
        super().close()


def _reset_session(session: PostgresSession) -> None:
    session.reset()
