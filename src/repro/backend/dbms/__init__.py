"""Live-DBMS support layer for the cost backends.

Everything here is deliberately driver-shaped rather than driver-bound:
the modules speak to any object exposing the DB-API ``cursor()`` /
``execute()`` / ``fetchone()`` surface, so the entire layer unit-tests
against fakes with canned planner output and only
:func:`~repro.backend.dbms.connection.require_psycopg` ever imports the
optional ``psycopg`` driver.

Modules:

* :mod:`~repro.backend.dbms.connection` — optional-dependency gate,
  retry-with-backoff, and a small lazy connection pool.
* :mod:`~repro.backend.dbms.explain` — ``EXPLAIN (FORMAT JSON)`` parsing
  (root total cost and a renderable plan tree).
* :mod:`~repro.backend.dbms.hypo` — HypoPG hypothetical-index DDL and the
  per-connection diff/sync state machine.
* :mod:`~repro.backend.dbms.loader` — materialise repro schemas and
  deterministic synthetic data into live Postgres tables.
"""

from repro.backend.dbms.connection import (
    ConnectionPool,
    psycopg_available,
    require_psycopg,
    transient_errors,
    with_retry,
)
from repro.backend.dbms.explain import PlanNode, PostgresPlan, parse_plan, plan_total_cost
from repro.backend.dbms.hypo import HypoIndexState, hypo_index_ddl
from repro.backend.dbms.loader import (
    create_table_sql,
    ensure_hypopg,
    load_schema,
    materialize_workload,
    row_values,
    scaled_rows,
)

__all__ = [
    "ConnectionPool",
    "HypoIndexState",
    "PlanNode",
    "PostgresPlan",
    "create_table_sql",
    "ensure_hypopg",
    "hypo_index_ddl",
    "load_schema",
    "materialize_workload",
    "parse_plan",
    "plan_total_cost",
    "psycopg_available",
    "require_psycopg",
    "row_values",
    "scaled_rows",
    "transient_errors",
    "with_retry",
]
