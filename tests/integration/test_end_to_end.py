"""End-to-end integration tests across the full pipeline."""

import pytest

from repro import (
    MCTSTuner,
    TuningConstraints,
    TwoPhaseGreedyTuner,
    VanillaGreedyTuner,
    WhatIfOptimizer,
    get_workload,
)
from repro.workload import CandidateGenerator


@pytest.fixture(scope="module")
def tpch_candidates(tpch):
    return CandidateGenerator(tpch.schema).for_workload(tpch)


class TestTPCHEndToEnd:
    def test_sql_to_recommendation(self, tpch, tpch_candidates):
        """Full pipeline: 22 real SQL texts -> parsed -> costed -> tuned."""
        result = MCTSTuner(seed=0).tune(
            tpch,
            budget=150,
            constraints=TuningConstraints(max_indexes=8),
            candidates=tpch_candidates,
        )
        assert result.calls_used <= 150
        assert 0 < result.true_improvement() <= 100
        assert all(ix.table in tpch.schema.table_names for ix in result.configuration)

    def test_recommendation_actually_changes_plans(self, tpch, tpch_candidates):
        result = MCTSTuner(seed=1).tune(
            tpch, budget=200, candidates=tpch_candidates
        )
        optimizer = WhatIfOptimizer(tpch)
        changed = 0
        for query in tpch:
            before = optimizer.explain(query, frozenset())
            after = optimizer.explain(query, result.configuration)
            if after.total_cost < before.total_cost - 1e-9:
                changed += 1
        assert changed >= 5  # multiple queries benefit, not just one

    def test_shared_candidates_consistent_across_tuners(self, tpch, tpch_candidates):
        """Different algorithms tuning the same problem stay comparable."""
        constraints = TuningConstraints(max_indexes=10)
        results = {}
        for tuner in (VanillaGreedyTuner(), TwoPhaseGreedyTuner(), MCTSTuner(seed=0)):
            results[tuner.name] = tuner.tune(
                tpch, budget=100, constraints=constraints,
                candidates=tpch_candidates,
            )
        baselines = {r.baseline_cost for r in results.values()}
        assert len(baselines) == 1  # same workload baseline everywhere
        for result in results.values():
            assert result.calls_used <= 100


class TestBudgetScaling:
    """The paper's qualitative claims at workload level."""

    def test_mcts_beats_vanilla_at_small_budget_tpch(self, tpch, tpch_candidates):
        constraints = TuningConstraints(max_indexes=10)
        vanilla = VanillaGreedyTuner().tune(
            tpch, budget=50, constraints=constraints, candidates=tpch_candidates
        )
        mcts = [
            MCTSTuner(seed=s)
            .tune(tpch, budget=50, constraints=constraints, candidates=tpch_candidates)
            .true_improvement()
            for s in range(3)
        ]
        assert sum(mcts) / len(mcts) >= vanilla.true_improvement()

    def test_improvement_saturates_with_budget(self, tpch, tpch_candidates):
        constraints = TuningConstraints(max_indexes=10)
        small = MCTSTuner(seed=0).tune(
            tpch, budget=40, constraints=constraints, candidates=tpch_candidates
        )
        large = MCTSTuner(seed=0).tune(
            tpch, budget=600, constraints=constraints, candidates=tpch_candidates
        )
        assert large.true_improvement() >= small.true_improvement() - 2.0


class TestScaledRealWorkloads:
    def test_real_m_tunes(self):
        workload = get_workload("real_m", scale=0.1)
        result = MCTSTuner(seed=0).tune(
            workload, budget=100, constraints=TuningConstraints(max_indexes=5)
        )
        assert result.calls_used <= 100
        assert result.true_improvement() >= 0

    def test_real_d_tunes(self):
        workload = get_workload("real_d", scale=0.05)
        result = TwoPhaseGreedyTuner().tune(
            workload, budget=100, constraints=TuningConstraints(max_indexes=5)
        )
        assert result.calls_used <= 100
        assert result.true_improvement() >= 0
