"""Static analysis and runtime invariants for the reproduction.

Two layers guard the invariants the budget curves depend on:

* the **static** layer — an AST rule engine (:mod:`repro.lint.engine`) with
  per-file project-specific rules (:mod:`repro.lint.rules`, REP001–REP007),
  whole-program flow rules (:mod:`repro.lint.flow`, REP101–REP106) over a
  linked project index with an incremental summary cache, a per-line
  suppression syntax, text/JSON/SARIF reporters, and a checked-in baseline
  of justified exceptions. Run it as ``python -m repro.lint src/ --flow``.
* the **runtime** layer — opt-in sanitizers (:mod:`repro.lint.sanitizers`)
  activated by ``REPRO_SANITIZE=1`` that assert cost-model monotonicity
  (Assumption 1) and session event-stream discipline on live runs.
"""

from repro.lint import rules as _rules  # noqa: F401  (populates the registry)
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import (
    FLOW_RULE_IDS,
    REGISTRY,
    LintEngine,
    Rule,
    known_rule_ids,
    register,
)
from repro.lint.findings import Finding
from repro.lint.sanitizers import (
    EventStreamValidator,
    MonotonicityChecker,
    SessionSanitizers,
    install_session_sanitizers,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "EventStreamValidator",
    "FLOW_RULE_IDS",
    "Finding",
    "LintEngine",
    "MonotonicityChecker",
    "REGISTRY",
    "Rule",
    "SessionSanitizers",
    "install_session_sanitizers",
    "known_rule_ids",
    "register",
]
