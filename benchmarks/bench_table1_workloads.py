"""E-T1 — Table 1: database and workload statistics for all five workloads."""

from conftest import run_once

from repro.eval.experiments import table1_workload_statistics


def test_table1_workload_statistics(benchmark, settings, archive):
    text = run_once(benchmark, lambda: table1_workload_statistics(settings))
    archive("table1_workloads", text)
    assert "tpcds" in text
