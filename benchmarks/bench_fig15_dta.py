"""E-F15 — Figure 15: MCTS vs DTA on the large workloads, with and without
the storage constraint (3x database size, DTA's default)."""

import pytest
from conftest import run_once

from repro.eval.experiments import dta_comparison


@pytest.mark.parametrize("workload", ["tpcds", "real_d", "real_m"])
@pytest.mark.parametrize("sc", [True, False], ids=["with_sc", "without_sc"])
def test_fig15_dta(benchmark, settings, archive, workload, sc):
    records, text = run_once(
        benchmark,
        lambda: dta_comparison(workload, settings, storage_constraint=sc),
    )
    suffix = "sc" if sc else "nosc"
    archive(f"fig15_dta_{workload}_{suffix}", text, records=records)
    assert {record.tuner for record in records} == {"dta", "mcts"}
    assert all(record.calls_used <= record.budget for record in records)
