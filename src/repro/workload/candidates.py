"""Candidate index generation (stage 1 of Figure 1, illustrated in Figure 3).

For each query we extract *indexable columns* — columns in equality/range
filter predicates, join predicates, GROUP BY and ORDER BY clauses — plus
projection columns usable as the payload of covering indexes. From these we
generate per-query candidate indexes the way AutoAdmin-style tuners do:
filter-seek indexes (equality prefix + one range column), join indexes,
and order-providing indexes, each optionally widened into a covering variant
with INCLUDE columns. The workload's candidate set is the deduplicated union
over its queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog import Index, Schema, index_sort_key
from repro.optimizer.selectivity import predicate_selectivity
from repro.workload.analysis import BoundQuery, PredicateKind, TableAccess
from repro.workload.query import Query, Workload


@dataclass
class IndexableColumns:
    """Indexable columns of one query, grouped per table binding.

    Mirrors the left table of Figure 3: equality / range / join columns form
    potential index keys; projection columns are potential index payloads.
    """

    equality: dict[str, list[str]] = field(default_factory=dict)
    range: dict[str, list[str]] = field(default_factory=dict)
    join: dict[str, list[str]] = field(default_factory=dict)
    grouping: dict[str, list[str]] = field(default_factory=dict)
    ordering: dict[str, list[str]] = field(default_factory=dict)
    projection: dict[str, list[str]] = field(default_factory=dict)

    def _add(self, bucket: dict[str, list[str]], binding: str, column: str) -> None:
        columns = bucket.setdefault(binding, [])
        if column not in columns:
            columns.append(column)

    def all_key_columns(self, binding: str) -> list[str]:
        """Every potential key column of ``binding``, de-duplicated in order."""
        merged: list[str] = []
        for bucket in (self.equality, self.range, self.join, self.grouping, self.ordering):
            for column in bucket.get(binding, []):
                if column not in merged:
                    merged.append(column)
        return merged


def extract_indexable_columns(bound: BoundQuery) -> IndexableColumns:
    """Extract the indexable columns of a bound query (Figure 3, step 1)."""
    result = IndexableColumns()
    for binding, access in bound.accesses.items():
        for predicate in access.filters:
            if predicate.kind is PredicateKind.EQUALITY:
                result._add(result.equality, binding, predicate.column)
            elif predicate.kind is PredicateKind.RANGE:
                result._add(result.range, binding, predicate.column)
        for column in sorted(access.required_columns):
            result._add(result.projection, binding, column)
    for join in bound.joins:
        result._add(result.join, join.left_binding, join.left_column)
        result._add(result.join, join.right_binding, join.right_column)
    for binding, column in bound.group_by:
        result._add(result.grouping, binding, column)
    for binding, column, _ in bound.order_by:
        result._add(result.ordering, binding, column)
    return result


@dataclass(frozen=True)
class CandidateGeneratorOptions:
    """Knobs for candidate generation.

    Attributes:
        covering_variants: Also emit covering (INCLUDE) variants of each key
            shape, enabling index-only plans.
        max_include_columns: Cap on INCLUDE payload width; covering variants
            whose payload would exceed it are skipped (wide-row protection).
        max_key_columns: Cap on composite key length.
        max_candidates_per_query: Truncation cap per query (applied after
            deterministic ordering, mirroring tuners that bound the
            per-query candidate count).
    """

    covering_variants: bool = True
    max_include_columns: int = 6
    max_key_columns: int = 3
    max_candidates_per_query: int = 24


class CandidateGenerator:
    """Generates candidate indexes for queries and workloads."""

    def __init__(self, schema: Schema, options: CandidateGeneratorOptions | None = None):
        self._schema = schema
        self._options = options or CandidateGeneratorOptions()

    # ------------------------------------------------------------------ #

    def for_query(self, bound: BoundQuery) -> list[Index]:
        """Candidate indexes for one bound query (Figure 3, step 2)."""
        candidates: list[Index] = []
        seen: set[tuple] = set()

        def emit(table_name: str, keys: list[str], includes: list[str]) -> None:
            keys = list(dict.fromkeys(keys))  # dedupe, keep order
            if not keys or len(keys) > self._options.max_key_columns:
                return
            payload = [c for c in includes if c not in keys]
            payload = payload[: self._options.max_include_columns]
            signature = (table_name, tuple(keys), tuple(sorted(payload)))
            if signature in seen:
                return
            seen.add(signature)
            table = self._schema.table(table_name)
            candidates.append(Index.build(table, keys, tuple(sorted(payload))))

        for access in bound.accesses.values():
            self._emit_for_access(bound, access, emit)

        candidates.sort(key=index_sort_key)
        return candidates[: self._options.max_candidates_per_query]

    def for_workload(self, workload: Workload) -> list[Index]:
        """Deduplicated union of per-query candidates over ``workload``."""
        merged: list[Index] = []
        seen: set[tuple] = set()
        for query in workload:
            bound = self._bind(workload, query)
            for index in self.for_query(bound):
                signature = index_sort_key(index)
                if signature not in seen:
                    seen.add(signature)
                    merged.append(index)
        return merged

    # ------------------------------------------------------------------ #

    def _bind(self, workload: Workload, query: Query) -> BoundQuery:
        from repro.workload.analysis import bind_query

        return bind_query(workload.schema, query.statement, query.qid)

    def _selectivity(self, access: TableAccess, column: str) -> float:
        """Combined selectivity of the filters on ``column`` (1.0 if none)."""
        table = self._schema.table(access.table)
        result = 1.0
        for predicate in access.filters:
            if predicate.column == column:
                result *= predicate_selectivity(table.column(column), predicate)
        return result

    def _emit_for_access(self, bound: BoundQuery, access: TableAccess, emit) -> None:
        options = self._options
        equality = sorted(
            access.equality_columns, key=lambda c: self._selectivity(access, c)
        )
        ranges = sorted(
            access.range_columns, key=lambda c: self._selectivity(access, c)
        )
        join_columns: list[str] = []
        for join in bound.joins_of(access.binding):
            _, column = join.side(access.binding)
            if column not in join_columns:
                join_columns.append(column)
        required = sorted(access.required_columns)

        # Filter-seek shapes: equality prefix, optionally closed by the most
        # selective range column.
        if equality:
            keys = equality[: options.max_key_columns]
            emit(access.table, keys, [])
            if ranges:
                keys_with_range = equality[: options.max_key_columns - 1] + ranges[:1]
                emit(access.table, keys_with_range, [])
            if options.covering_variants:
                emit(access.table, keys, required)
        elif ranges:
            emit(access.table, ranges[:1], [])
            if options.covering_variants:
                emit(access.table, ranges[:1], required)

        # Join shapes: join column leading (for index-nested-loop lookups),
        # optionally refined by filter columns and a covering variant.
        for join_column in join_columns:
            emit(access.table, [join_column], [])
            if equality:
                emit(
                    access.table,
                    [join_column, *equality[: options.max_key_columns - 1]],
                    [],
                )
                emit(
                    access.table,
                    [*equality[: options.max_key_columns - 1], join_column],
                    [],
                )
            if options.covering_variants:
                emit(access.table, [join_column], required)

        # Order-providing shapes for GROUP BY / ORDER BY on this binding.
        grouping = [c for b, c in bound.group_by if b == access.binding]
        ordering = [c for b, c, _ in bound.order_by if b == access.binding]
        for order_keys in (grouping, ordering):
            if order_keys:
                emit(access.table, order_keys[: options.max_key_columns], [])
                if options.covering_variants:
                    emit(
                        access.table,
                        order_keys[: options.max_key_columns],
                        required,
                    )


def candidate_indexes_for_query(
    schema: Schema, bound: BoundQuery, options: CandidateGeneratorOptions | None = None
) -> list[Index]:
    """Convenience wrapper over :meth:`CandidateGenerator.for_query`."""
    return CandidateGenerator(schema, options).for_query(bound)


def candidates_for_query(
    schema: Schema,
    query: Query,
    pool: list[Index],
    options: CandidateGeneratorOptions | None = None,
) -> list[Index]:
    """The subset of ``pool`` that is *this query's own* candidate set.

    The per-query candidate sets (``I_q`` in Algorithm 2 and the
    IndexSelection pools of Algorithm 4) are the indexes generated *for*
    the query, not every pool index on its tables. When ``pool`` was built
    by :meth:`CandidateGenerator.for_workload` the generated set is a
    subset of it; for externally-supplied pools that share nothing with the
    generator's output, fall back to table-relevance filtering so every
    query keeps a non-trivial pool.
    """
    from repro.workload.analysis import bind_query

    bound = bind_query(schema, query.statement, query.qid)
    generated = CandidateGenerator(schema, options).for_query(bound)
    pool_set = set(pool)
    own = [index for index in generated if index in pool_set]
    if own:
        return own
    tables = {access.table for access in bound.accesses.values()}
    return [index for index in pool if index.table in tables]


def atomic_configurations(
    candidates: list[Index], max_size: int = 1
) -> list[frozenset[Index]]:
    """Atomic configurations in the AutoAdmin sense (Section 4.2.2).

    The paper's AutoAdmin-greedy baseline restricts what-if budget to atomic
    configurations of size 1 (singletons); larger sizes enumerate all
    same-table-free combinations up to ``max_size``.
    """
    from itertools import combinations

    atoms: list[frozenset[Index]] = [frozenset({index}) for index in candidates]
    for size in range(2, max_size + 1):
        for combo in combinations(candidates, size):
            tables = {index.table for index in combo}
            if len(tables) == len(combo):  # one index per table
                atoms.append(frozenset(combo))
    return atoms
