"""Replay backend: serve recorded costs with zero cost-model invocations."""

from __future__ import annotations

from pathlib import Path

from repro.backend.analytic import AnalyticBackend
from repro.backend.trace import TraceKey, canonical_key, read_trace
from repro.catalog import Index
from repro.exceptions import TraceError, TraceMissError, TuningError
from repro.optimizer.prepared import PreparedQuery


class ReplayBackend(AnalyticBackend):
    """Costs served from a recorded JSONL trace — never from the cost model.

    Caching, normalization, budget metering, and the call-log layout are the
    analytic engine's; only the raw evaluation seam is replaced by a trace
    lookup. Replaying the same tuner/seed/budget that produced the trace is
    therefore bit-identical to the recorded run while issuing *zero*
    cost-model invocations (the CI smoke job asserts this by making
    ``CostModel.cost`` raise). A lookup miss raises
    :class:`~repro.exceptions.TraceMissError` — replay never silently falls
    back to analytic costing.

    The trace header is authoritative for cache normalization (keys were
    recorded post-normalization) and is validated against the session's
    workload by name and query count.

    Args:
        workload: The workload being tuned; must match the trace header.
        trace_path: The JSONL trace to serve costs from.
        **kwargs: Forwarded to the analytic engine. ``normalize_cache`` may
            only be passed if it agrees with the trace header.
    """

    name = "replay"
    monotonic = True

    #: A replayed pricing is a dict lookup — there is nothing to overlap,
    #: and fanning lookups over workers would only race the ``replayed``
    #: counter. Replay always prices serially (results are identical).
    supports_concurrent_pricing = False

    def __init__(self, workload, *args, trace_path: str | Path, **kwargs):
        if not trace_path:
            raise TuningError("ReplayBackend requires a trace_path")
        header, costs = read_trace(trace_path)
        if header.workload != workload.name or header.queries != len(workload):
            raise TraceError(
                f"trace {trace_path} was recorded against workload "
                f"{header.workload!r} ({header.queries} queries); replay "
                f"session uses {workload.name!r} ({len(workload)} queries)"
            )
        requested = kwargs.pop("normalize_cache", None)
        if requested is not None and requested != header.normalize_cache:
            raise TraceError(
                f"trace {trace_path} was recorded with "
                f"normalize_cache={header.normalize_cache}; cannot replay "
                f"with normalize_cache={requested}"
            )
        super().__init__(
            workload, *args, normalize_cache=header.normalize_cache, **kwargs
        )
        self._trace_path = Path(trace_path)
        self._trace_costs: dict[tuple[str, TraceKey], float] = costs

    @property
    def trace_path(self) -> Path:
        """Source of the replayed trace."""
        return self._trace_path

    @property
    def trace_pairs(self) -> int:
        """Distinct (query, configuration) costs available in the trace."""
        return len(self._trace_costs)

    def cache_identity(self) -> dict:
        """Extend the shard key with the trace content.

        Replayed costs *are* the trace, so two different traces must never
        share a shard file even when everything else matches.
        """
        from repro.backend.cache import stable_digest

        identity = super().cache_identity()
        identity["trace"] = stable_digest(
            [[qid, list(key), cost] for (qid, key), cost in sorted(self._trace_costs.items())]
        )
        return identity

    def _evaluate(self, prepared: PreparedQuery, key: frozenset[Index]) -> float:
        trace_key = canonical_key(key)
        cost = self._trace_costs.get((prepared.qid, trace_key))
        if cost is None:
            raise TraceMissError(
                f"trace {self._trace_path} has no cost for query "
                f"{prepared.qid!r} under configuration {list(trace_key)} — "
                "the replayed run diverged from the recorded one",
                qid=prepared.qid,
                key=trace_key,
            )
        self._stats.replayed += 1
        return cost
