"""Table metadata tests."""

import pytest

from repro.catalog import Column, ColumnStats, Table
from repro.catalog.table import PAGE_BYTES, ROW_OVERHEAD_BYTES
from repro.exceptions import CatalogError, UnknownColumnError


def make_table(rows=1000, ncols=3):
    columns = [
        Column(name=f"c{i}", stats=ColumnStats(distinct_count=10, avg_width=4))
        for i in range(ncols)
    ]
    return Table(name="t", columns=columns, row_count=rows)


class TestConstruction:
    def test_basic(self):
        table = make_table()
        assert table.name == "t"
        assert table.row_count == 1000

    def test_rejects_duplicate_columns(self):
        c = Column(name="dup")
        with pytest.raises(CatalogError, match="duplicate"):
            Table(name="t", columns=[c, c], row_count=10)

    def test_rejects_no_columns(self):
        with pytest.raises(CatalogError):
            Table(name="t", columns=[], row_count=10)

    def test_rejects_negative_rows(self):
        with pytest.raises(CatalogError):
            make_table(rows=-1)

    def test_rejects_bad_name(self):
        with pytest.raises(CatalogError):
            Table(name="bad name", columns=[Column(name="c")], row_count=1)


class TestLookup:
    def test_column_lookup(self):
        table = make_table()
        assert table.column("c1").name == "c1"

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            make_table().column("nope")

    def test_has_column(self):
        table = make_table()
        assert table.has_column("c0")
        assert not table.has_column("zz")

    def test_column_names_ordered(self):
        assert make_table(ncols=3).column_names == ["c0", "c1", "c2"]


class TestSizeModel:
    def test_row_bytes_includes_overhead(self):
        table = make_table(ncols=2)
        assert table.row_bytes == ROW_OVERHEAD_BYTES + 8

    def test_pages_at_least_one(self):
        assert make_table(rows=0).pages == 1

    def test_pages_scale_with_rows(self):
        small = make_table(rows=1_000)
        large = make_table(rows=1_000_000)
        assert large.pages > small.pages * 100

    def test_size_bytes_is_pages_times_page_size(self):
        table = make_table()
        assert table.size_bytes == table.pages * PAGE_BYTES


class TestIdentity:
    def test_equality_by_name(self):
        assert make_table() == make_table(rows=5)

    def test_hashable(self):
        assert len({make_table(), make_table(rows=5)}) == 1
