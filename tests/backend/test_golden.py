"""AnalyticBackend bit-identity: the factory path vs the pre-backend oracle.

``tests/budget/test_fcfs_golden.py`` pins the *default* tune path against
``fcfs_golden.json``; this suite pins the explicit backend selections —
``backend="analytic"`` and ``backend=BackendSpec(name="analytic")`` — and
the parallel executor carrying a backend spec across the process pool.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.backend import BackendSpec
from repro.config import TuningConstraints
from repro.eval.runner import ExperimentRunner
from repro.tuners import MCTSTuner

_FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_fcfs_golden", _FIXTURES / "gen_fcfs_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_GEN = _load_generator()
_GOLDEN = json.loads((_FIXTURES / "fcfs_golden.json").read_text())


@pytest.fixture(scope="module")
def workloads(tpch):
    return {"toy": _GEN.build_toy_workload(), "tpch": tpch}


@pytest.mark.parametrize(
    "label,workload_name,factory,budget,seed",
    _GEN.CASES,
    ids=[case[0] for case in _GEN.CASES],
)
@pytest.mark.parametrize(
    "backend",
    ["analytic", BackendSpec(name="analytic")],
    ids=["name", "spec"],
)
def test_explicit_analytic_backend_matches_the_oracle(
    workloads, label, workload_name, factory, budget, seed, backend
):
    expected = _GOLDEN[label]
    result = factory(seed).tune(
        workloads[workload_name], budget=budget, backend=backend
    )
    snapshot = _GEN.snapshot_result(result)
    assert snapshot["configuration"] == expected["configuration"]
    assert snapshot["estimated_cost"] == expected["estimated_cost"]
    assert snapshot["baseline_cost"] == expected["baseline_cost"]
    assert snapshot["calls_used"] == expected["calls_used"]
    assert snapshot["history"] == expected["history"]
    assert snapshot["call_log"] == expected["call_log"]


def test_backend_spec_survives_the_process_pool(toy_workload, toy_candidates):
    """A noisy spec shipped to 2 workers reproduces the serial cell exactly."""

    def cell(jobs):
        runner = ExperimentRunner(
            toy_workload,
            candidates=toy_candidates,
            seeds=[7, 11],
            keep_results=False,
            parallel=jobs,
        )
        return runner.run_cell(
            lambda seed: MCTSTuner(seed=seed),
            budget=30,
            constraints=TuningConstraints(max_indexes=3),
            backend=BackendSpec(name="noisy", noise=0.2, noise_seed=5),
        )

    serial, pooled = cell(1), cell(2)
    assert serial.backend == pooled.backend == "noisy"
    assert serial.improvement_mean == pooled.improvement_mean
    assert serial.calls_used == pooled.calls_used
    assert serial.event_counts == pooled.event_counts
    assert serial.seeds == pooled.seeds
