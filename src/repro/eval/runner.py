"""Grid runner: tuner × cardinality × budget × seed sweeps.

The paper's end-to-end figures are grids of (algorithm, K, B) cells, with
stochastic algorithms averaged over five RNG seeds. :class:`ExperimentRunner`
executes such grids, reusing the workload's candidate set across cells, and
returns flat :class:`RunRecord` rows the report module formats.

Every cell is an independent tuning run, so the runner can fan the
(tuner, K, B, seed) units out to worker processes (``parallel=N``); the
parallel path builds the same :class:`~repro.parallel.spec.CellSpec` units
the serial path runs in-process and merges worker outcomes in grid order,
so records are bit-identical to a serial run (wall-clock fields aside —
they measure time). See :mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.backend.factory import BackendSpec, resolve_spec
from repro.catalog import Index
from repro.config import ReproConfig, TuningConstraints
from repro.eval.metrics import mean_and_std
from repro.exceptions import TuningError
from repro.lint.sanitizers import EventStreamValidator
from repro.parallel.executor import execute_specs
from repro.parallel.spec import CellSpec, SeedOutcome
from repro.parallel.worker import run_seed_with_result
from repro.rng import DEFAULT_SEED, spawn_seeds
from repro.tuners.base import Tuner, TuningResult
from repro.workload.candidates import CandidateGenerator
from repro.workload.query import Workload

#: A factory producing a (fresh) tuner for a given RNG seed. Deterministic
#: tuners may ignore the seed; they are then run once per cell. Factories
#: are always called in the parent process (the resulting *tuner* is what a
#: worker receives), so closures work under ``parallel`` too.
TunerFactory = Callable[[int], Tuner]


@dataclass
class RunRecord:
    """One grid cell: a tuner at one (K, B) point.

    Aggregation conventions (reconstructible from :attr:`seed_metrics`):
    ``improvement_mean``/``improvement_std``, ``calls_used``, ``seconds``,
    ``cache_hit_rate``, ``normalized_hits`` and ``cost_seconds`` are
    **means** across seeds, while ``event_counts`` is a **sum** across
    seeds and ``stop_reasons`` a flat list (one entry per halted seed).

    Attributes:
        workload: Workload name.
        tuner: Algorithm name.
        max_indexes: Cardinality constraint ``K``.
        budget: What-if budget ``B``.
        improvement_mean: Mean true improvement (%) across seeds.
        improvement_std: Standard deviation across seeds (0 for
            deterministic algorithms).
        calls_used: Mean counted calls consumed.
        seconds: Mean wall-clock seconds per run (library time, not the
            simulated what-if latency).
        cache_hit_rate: Mean what-if cache hit rate across seeds.
        normalized_hits: Mean free lookups owed to relevant-index cache
            normalization (calls a whole-key cache would have counted).
        cost_seconds: Mean wall-clock spent inside the cost model.
        persistent_hits: Mean pricings recalled from the persistent
            cross-session what-if cache (0 when no cache is configured).
        budget_policy: The budget discipline the cell ran under.
        backend: The cost backend the cell ran against.
        event_counts: **Summed** session event counts by kind across seeds
            (``whatif_call``, ``budget_deny``, ``checkpoint``, ``stop``, …).
        stop_reasons: Early-stop reasons of the seeds a policy halted
            (empty when every run spent its full budget).
        seeds: Seeds used.
        seed_metrics: Raw per-seed scalars (improvement, calls, seconds,
            cache counters, stop reason, event counts) in seed order — the
            un-aggregated values behind the means/sums above, exported to
            the ``BENCH_*.json`` archive.
        results: The underlying per-seed results (for convergence plots).
    """

    workload: str
    tuner: str
    max_indexes: int
    budget: int
    improvement_mean: float
    improvement_std: float
    calls_used: float
    seconds: float
    cache_hit_rate: float = 0.0
    normalized_hits: float = 0.0
    cost_seconds: float = 0.0
    persistent_hits: float = 0.0
    budget_policy: str = "fcfs"
    backend: str = "analytic"
    event_counts: dict[str, int] = field(default_factory=dict)
    stop_reasons: list[str] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    seed_metrics: list[dict] = field(default_factory=list)
    results: list[TuningResult] = field(default_factory=list, repr=False)


class ExperimentRunner:
    """Runs tuning grids over one workload.

    Args:
        workload: The workload under test.
        candidates: Optional pre-built candidate set (generated once
            otherwise and shared across all cells).
        seeds: RNG seeds for stochastic tuners (the paper uses five).
        keep_results: Retain full per-seed results on each record (needed
            for convergence series; disable to save memory in big sweeps —
            and required off for ``parallel > 1``, because live optimizers
            never cross the process boundary).
        parallel: Worker processes for cell execution. ``1`` (default) runs
            serially in-process; ``N > 1`` fans (tuner, K, B, seed) units
            out via :mod:`repro.parallel` with a deterministic merge.
    """

    def __init__(
        self,
        workload: Workload,
        candidates: list[Index] | None = None,
        seeds: list[int] | None = None,
        keep_results: bool = True,
        parallel: int = 1,
    ):
        if parallel < 1:
            raise TuningError(f"parallel must be at least 1, got {parallel}")
        if parallel > 1 and keep_results:
            raise TuningError(
                "parallel execution cannot retain live per-seed results; "
                "pass keep_results=False (convergence series need a serial "
                "runner)"
            )
        self._workload = workload
        self._candidates = (
            candidates
            if candidates is not None
            else CandidateGenerator(workload.schema).for_workload(workload)
        )
        self._seeds = seeds or spawn_seeds(DEFAULT_SEED, 5)
        self._keep_results = keep_results
        self._parallel = parallel

    @property
    def workload(self) -> Workload:
        return self._workload

    @property
    def candidates(self) -> list[Index]:
        return list(self._candidates)

    @property
    def parallel(self) -> int:
        return self._parallel

    # ------------------------------------------------------------------ #
    # cell spec construction and aggregation (shared serial/parallel)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_backend(backend: BackendSpec | str | None) -> BackendSpec | None:
        """Validate a grid-level backend selection.

        The record backend captures *one session's* trace; a grid of
        independent runs would overwrite the file per cell, so it is
        rejected here (record with ``repro tune --backend record``).
        """
        if backend is None:
            return None
        spec = backend if isinstance(backend, BackendSpec) else resolve_spec(backend)
        if spec.name == "record":
            raise TuningError(
                "the record backend captures a single session's trace; "
                "record with `repro tune --backend record`, not in an "
                "experiment grid"
            )
        return spec

    def _cell_specs(
        self,
        factory: TunerFactory,
        budget: int,
        constraints: TuningConstraints,
        stochastic: bool,
        budget_policy: str | None,
        label: str = "",
        backend: BackendSpec | None = None,
    ) -> list[CellSpec]:
        """One spec per seed for a (tuner, K, B) cell, in seed order."""
        seeds = self._seeds if stochastic else self._seeds[:1]
        specs = []
        for seed in seeds:
            tuner = factory(seed)
            specs.append(
                CellSpec(
                    label=label or tuner.name,
                    workload=self._workload,
                    candidates=tuple(self._candidates),
                    tuner=tuner,
                    budget=budget,
                    constraints=constraints,
                    seed=seed,
                    budget_policy=budget_policy,
                    backend=backend,
                )
            )
        return specs

    def _aggregate(
        self,
        outcomes: list[SeedOutcome],
        constraints: TuningConstraints,
        budget: int,
        budget_policy: str | None,
        results: list[TuningResult],
        backend: BackendSpec | None = None,
    ) -> RunRecord:
        """Fold per-seed outcomes (in seed order) into one record.

        This is the single aggregation path for serial and parallel runs:
        the parallel merge feeds it worker-shipped outcomes, the serial
        loop feeds it in-process ones, and the resulting records are
        bit-identical (timing fields aside).
        """
        sanitize = ReproConfig.from_env().sanitize
        improvements: list[float] = []
        calls: list[float] = []
        elapsed: list[float] = []
        hit_rates: list[float] = []
        norm_hits: list[float] = []
        cost_secs: list[float] = []
        persist_hits: list[float] = []
        event_counts: dict[str, int] = {}
        stop_reasons: list[str] = []
        tuner_name = ""
        for outcome in outcomes:
            tuner_name = outcome.tuner_name
            if sanitize:
                # Post-hoc replay of the recorded stream: catches invariant
                # breaks even for tuners driven outside a sanitized session
                # (and for streams shipped back from worker processes).
                EventStreamValidator.validate(outcome.events, budget=outcome.budget)
            improvements.append(outcome.improvement)
            calls.append(float(outcome.calls_used))
            elapsed.append(outcome.seconds)
            for event in outcome.events:
                event_counts[event.kind] = event_counts.get(event.kind, 0) + 1
            if outcome.stop_reason is not None:
                stop_reasons.append(outcome.stop_reason)
            if outcome.stats is not None:
                hit_rates.append(outcome.stats.hit_rate)
                norm_hits.append(float(outcome.stats.normalized_hits))
                cost_secs.append(outcome.stats.cost_seconds)
                persist_hits.append(float(outcome.stats.persistent_hits))
        mean, std = mean_and_std(improvements)

        def _mean(values: list[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        return RunRecord(
            workload=self._workload.name,
            tuner=tuner_name,
            max_indexes=constraints.max_indexes,
            budget=budget,
            improvement_mean=mean,
            improvement_std=std,
            calls_used=sum(calls) / len(calls),
            seconds=sum(elapsed) / len(elapsed),
            cache_hit_rate=_mean(hit_rates),
            normalized_hits=_mean(norm_hits),
            cost_seconds=_mean(cost_secs),
            persistent_hits=_mean(persist_hits),
            budget_policy=budget_policy or "fcfs",
            backend=backend.name if backend is not None else "analytic",
            event_counts=event_counts,
            stop_reasons=stop_reasons,
            seeds=[outcome.seed for outcome in outcomes],
            seed_metrics=[outcome.as_metrics() for outcome in outcomes],
            results=results,
        )

    def _run_specs_serial(
        self, specs: list[CellSpec]
    ) -> tuple[list[SeedOutcome], list[TuningResult]]:
        """Run specs in-process, retaining live results when configured."""
        outcomes: list[SeedOutcome] = []
        results: list[TuningResult] = []
        for spec in specs:
            outcome, result = run_seed_with_result(spec)
            outcomes.append(outcome)
            if self._keep_results:
                results.append(result)
        return outcomes, results

    # ------------------------------------------------------------------ #

    def run_cell(
        self,
        factory: TunerFactory,
        budget: int,
        constraints: TuningConstraints,
        stochastic: bool = True,
        budget_policy: str | None = None,
        backend: BackendSpec | str | None = None,
    ) -> RunRecord:
        """Run one (tuner, K, B) cell, averaging seeds when stochastic.

        With ``parallel > 1`` the per-seed runs execute concurrently in
        worker processes and merge in seed order.

        Args:
            budget_policy: Optional budget-discipline name forwarded to
                :meth:`~repro.tuners.base.Tuner.tune` (``None`` keeps the
                config default, FCFS).
            backend: Optional cost-backend selection (name or picklable
                spec) applied to every seed (``None`` keeps the config
                default, analytic). The record backend is rejected — see
                :meth:`_check_backend`.
        """
        backend = self._check_backend(backend)
        specs = self._cell_specs(
            factory, budget, constraints, stochastic, budget_policy, backend=backend
        )
        if self._parallel > 1:
            outcomes = execute_specs(specs, self._parallel)
            results: list[TuningResult] = []
        else:
            outcomes, results = self._run_specs_serial(specs)
        return self._aggregate(
            outcomes, constraints, budget, budget_policy, results, backend
        )

    def run_budget_sweep(
        self,
        factory: TunerFactory,
        budgets: list[int],
        constraints: TuningConstraints,
        stochastic: bool = True,
        budget_policy: str | None = None,
        backend: BackendSpec | str | None = None,
    ) -> list[RunRecord]:
        """Run one tuner across a budget axis (one record per budget).

        Like :meth:`run_grid` with a single algorithm and a single ``K``;
        under ``parallel > 1`` all (budget, seed) units run concurrently.
        """
        backend = self._check_backend(backend)
        cells = [
            self._cell_specs(
                factory, budget, constraints, stochastic, budget_policy,
                backend=backend,
            )
            for budget in budgets
        ]
        return self._execute_cells(
            cells,
            [(budget, constraints) for budget in budgets],
            budget_policy,
            backend,
        )

    def run_grid(
        self,
        factories: dict[str, tuple[TunerFactory, bool]],
        budgets: list[int],
        k_values: list[int],
        max_storage_bytes: int | None = None,
        budget_policy: str | None = None,
        backend: BackendSpec | str | None = None,
    ) -> list[RunRecord]:
        """Run the full grid.

        With ``parallel > 1`` every (tuner, K, B, seed) unit across the
        whole grid is fanned out to one process pool, and records are
        merged in the same (K, budget, roster) order the serial loop
        produces.

        Args:
            factories: ``{label: (factory, stochastic)}`` per algorithm.
            budgets: Budget axis (the paper's x-axis).
            k_values: Cardinality constraints (one sub-figure per value).
            max_storage_bytes: Optional storage constraint applied to all
                cells.
            budget_policy: Optional budget-discipline name applied to all
                cells (``None`` keeps the config default, FCFS).
            backend: Optional cost-backend selection applied to all cells
                (``None`` keeps the config default, analytic).

        Returns:
            Records ordered by (K, budget, insertion order of factories).
        """
        backend = self._check_backend(backend)
        cells: list[list[CellSpec]] = []
        cell_meta: list[tuple[int, TuningConstraints]] = []
        for k in k_values:
            constraints = TuningConstraints(
                max_indexes=k, max_storage_bytes=max_storage_bytes
            )
            for budget in budgets:
                for label, (factory, stochastic) in factories.items():
                    cells.append(
                        self._cell_specs(
                            factory,
                            budget,
                            constraints,
                            stochastic,
                            budget_policy,
                            label=label,
                            backend=backend,
                        )
                    )
                    cell_meta.append((budget, constraints))
        return self._execute_cells(cells, cell_meta, budget_policy, backend)

    def _execute_cells(
        self,
        cells: list[list[CellSpec]],
        cell_meta: list[tuple[int, TuningConstraints]],
        budget_policy: str | None,
        backend: BackendSpec | None = None,
    ) -> list[RunRecord]:
        """Run grouped cell specs (serially or pooled) and aggregate each."""
        records: list[RunRecord] = []
        if self._parallel > 1:
            flat = [spec for cell in cells for spec in cell]
            outcomes = execute_specs(flat, self._parallel)
            cursor = 0
            for cell, (budget, constraints) in zip(cells, cell_meta, strict=True):
                chunk = outcomes[cursor : cursor + len(cell)]
                cursor += len(cell)
                records.append(
                    self._aggregate(
                        chunk, constraints, budget, budget_policy, [], backend
                    )
                )
        else:
            for cell, (budget, constraints) in zip(cells, cell_meta, strict=True):
                outcomes, results = self._run_specs_serial(cell)
                records.append(
                    self._aggregate(
                        outcomes, constraints, budget, budget_policy, results, backend
                    )
                )
        return records
