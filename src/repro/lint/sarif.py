"""SARIF 2.1.0 reporter — GitHub code-scanning annotations for CI.

Emits one run with the full rule catalog (per-file REP001–REP007 plus the
flow rules REP101–REP106) so uploads via
``github/codeql-action/upload-sarif`` render findings as inline
annotations. New findings are ``error``-level results; baselined findings
are included with a ``suppressions`` entry (reviewed, justified), which
code scanning displays as suppressed rather than open.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.lint.baseline import BaselineEntry
from repro.lint.engine import REGISTRY, SYNTAX_RULE, UNKNOWN_SUPPRESSION_RULE
from repro.lint.findings import Finding
from repro.lint.flow.rules import FLOW_REGISTRY

#: The published 2.1.0 schema location (validated in tests).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

SARIF_VERSION = "2.1.0"

#: Results at or past this severity fail code-scanning gates.
_LEVEL = "error"


def _rule_catalog() -> list[dict]:
    """Every known rule id with its one-line description, sorted."""
    catalog: dict[str, str] = {
        SYNTAX_RULE: "syntax error: file could not be parsed",
        UNKNOWN_SUPPRESSION_RULE: "unknown-suppression: suppression names an "
        "unregistered rule",
    }
    for rule_id, rule in REGISTRY.items():
        catalog[rule_id] = rule.title
    for rule_id, rule in FLOW_REGISTRY.items():
        catalog[rule_id] = rule.title
    return [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": catalog[rule_id]},
            "defaultConfiguration": {"level": _LEVEL},
        }
        for rule_id in sorted(catalog)
    ]


def _result(
    finding: Finding,
    rule_index: dict[str, int],
    suppressed_justification: str | None = None,
) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": _LEVEL,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed_justification is not None:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": suppressed_justification,
            }
        ]
    return result


def report_sarif(
    new: list[Finding],
    accepted: list[Finding],
    stale: list[BaselineEntry],
    stream: TextIO,
) -> None:
    """The ``--format sarif`` reporter (same signature as text/json)."""
    rules = _rule_catalog()
    rule_index = {rule["id"]: position for position, rule in enumerate(rules)}
    results = [_result(finding, rule_index) for finding in new]
    for finding in accepted:
        results.append(
            _result(
                finding,
                rule_index,
                suppressed_justification="accepted in lint-baseline.json",
            )
        )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")
