"""Evaluation metrics.

The paper's single quality metric is the *percentage improvement* of the
returned configuration over the existing (empty) configuration, measured
with actual what-if costs (Equation 4)::

    η(W, C) = (1 − cost(W, C) / cost(W, ∅)) × 100%
"""

from __future__ import annotations

import math

from repro.tuners.base import TuningResult


def improvement_percent(baseline_cost: float, configured_cost: float) -> float:
    """Equation 4 as a percentage; 0 for degenerate baselines."""
    if baseline_cost <= 0:
        return 0.0
    return (1.0 - configured_cost / baseline_cost) * 100.0


def mean_and_std(values: list[float]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation of ``values``."""
    if not values:
        return (0.0, 0.0)
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return (mean, math.sqrt(variance))


def round_series(result: TuningResult, calls_per_round: int) -> list[tuple[int, float]]:
    """Per-round best improvement from a result's convergence history.

    The RL baselines (and Figure 14/21) measure progress in *rounds* of
    ``|W|`` what-if calls. This converts the ``(calls, config)`` history
    into ``(round, improvement%)`` points: for each round boundary, the best
    configuration recorded at or before it.

    Args:
        result: A tuning result carrying its optimizer and history.
        calls_per_round: What-if calls per round (usually the workload size).
    """
    if result.optimizer is None:
        raise ValueError("result carries no optimizer for evaluation")
    if calls_per_round < 1:
        raise ValueError("calls_per_round must be positive")
    history = sorted(result.history, key=lambda item: item[0])
    if not history:
        return []
    total_calls = result.calls_used
    rounds = max(1, -(-total_calls // calls_per_round))
    series: list[tuple[int, float]] = []
    best_improvement = 0.0
    cursor = 0
    cache: dict[frozenset, float] = {}
    for round_index in range(1, rounds + 1):
        boundary = round_index * calls_per_round
        while cursor < len(history) and history[cursor][0] <= boundary:
            configuration = history[cursor][1]
            if configuration not in cache:
                cost = result.optimizer.true_workload_cost(configuration)
                cache[configuration] = improvement_percent(
                    result.baseline_cost, cost
                )
            best_improvement = max(best_improvement, cache[configuration])
            cursor += 1
        series.append((round_index, best_improvement))
    return series
