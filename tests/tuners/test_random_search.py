"""Random-search control baseline tests."""

from repro.config import TuningConstraints
from repro.tuners import RandomSearchTuner


class TestRandomSearch:
    def test_respects_budget_and_cardinality(self, toy_workload, toy_candidates):
        result = RandomSearchTuner(seed=0).tune(
            toy_workload,
            budget=50,
            constraints=TuningConstraints(max_indexes=3),
            candidates=toy_candidates,
        )
        assert result.calls_used <= 50
        assert len(result.configuration) <= 3

    def test_reproducible(self, toy_workload, toy_candidates):
        first = RandomSearchTuner(seed=5).tune(
            toy_workload, budget=40, candidates=toy_candidates
        )
        second = RandomSearchTuner(seed=5).tune(
            toy_workload, budget=40, candidates=toy_candidates
        )
        assert first.configuration == second.configuration

    def test_terminates_with_tiny_storage_cap(self, toy_workload, toy_candidates):
        constraints = TuningConstraints(max_indexes=3, max_storage_bytes=1)
        result = RandomSearchTuner(seed=0).tune(
            toy_workload, budget=20, constraints=constraints,
            candidates=toy_candidates,
        )
        assert result.configuration == frozenset()

    def test_improvement_non_negative(self, toy_workload, toy_candidates):
        result = RandomSearchTuner(seed=0).tune(
            toy_workload, budget=100, candidates=toy_candidates
        )
        assert result.true_improvement() >= 0.0
