"""Experiment harness: metrics, the what-if latency model, grid runner and
per-figure experiment definitions reproducing the paper's evaluation."""

from repro.eval.ascii_chart import line_chart
from repro.eval.metrics import improvement_percent, round_series
from repro.eval.timemodel import WhatIfTimeModel
from repro.eval.runner import ExperimentRunner, RunRecord
from repro.eval.report import format_grid, format_records, format_series, records_to_json

__all__ = [
    "ExperimentRunner",
    "RunRecord",
    "WhatIfTimeModel",
    "format_grid",
    "format_records",
    "format_series",
    "improvement_percent",
    "line_chart",
    "records_to_json",
    "round_series",
]
