"""The toy star-schema workload: small, deterministic, loadable anywhere.

This is the test suite's long-standing star schema and 12-query
synthesized workload, promoted into the suites registry so runtime
consumers — the CLI smoke paths and the Postgres loader/CI job in
particular — can build it by name (``--workload toy``) instead of only
inside pytest. The construction is fully deterministic (fixed synthesis
seed, fixed profile), so a toy workload built in CI, in a worker
process, and in a test fixture is the same workload, query for query.
"""

from __future__ import annotations

from repro.catalog import ColumnType, Schema, SchemaBuilder
from repro.workload.query import Workload
from repro.workload.synthesis import SynthesisProfile, WorkloadSynthesizer

#: Synthesis seed pinning the toy workload's queries.
TOY_SEED = 3

#: Synthesis profile pinning the toy workload's shape.
TOY_PROFILE = SynthesisProfile(num_queries=12, max_joins=2, filters_per_query=1.5)


def toy_star_schema() -> Schema:
    """A 1M-row fact table with two dimensions — the standard test schema."""
    return (
        SchemaBuilder("star")
        .table("fact", rows=1_000_000)
        .column("fk1", distinct=1_000)
        .column("fk2", distinct=500)
        .column("val", ColumnType.DECIMAL, distinct=10_000, lo=0, hi=10_000)
        .column("cat", ColumnType.VARCHAR, distinct=50)
        .column("flag", ColumnType.CHAR, distinct=3)
        .table("dim1", rows=1_000)
        .column("id", distinct=1_000)
        .column("attr", distinct=20)
        .table("dim2", rows=500)
        .column("id", distinct=500)
        .column("name", ColumnType.VARCHAR, distinct=500)
        .foreign_key("fact", "fk1", "dim1", "id")
        .foreign_key("fact", "fk2", "dim2", "id")
        .build()
    )


def toy_workload(scale: float = 1.0) -> Workload:
    """The deterministic 12-query toy workload over the star schema.

    ``scale`` is accepted for registry uniformity but ignored: the toy
    suite is already small, and scaling its *catalog* statistics would
    change costs and break the fixtures pinned against it. (Data volume
    at load time is scaled by the Postgres loader, not here.)
    """
    schema = toy_star_schema()
    return WorkloadSynthesizer(schema, TOY_PROFILE, seed=TOY_SEED).generate("toy")
