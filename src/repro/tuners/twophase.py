"""Two-phase greedy search (Algorithm 2) with session-drawn budget.

Phase 1 tunes every query as a singleton workload with Algorithm 1 — a
column-major fill of the budget allocation matrix (Figure 5(c)). Phase 2
takes the union of the per-query winners as a refined candidate set and runs
Algorithm 1 once more over the whole workload.
"""

from __future__ import annotations

from repro.catalog import Index
from repro.tuners.base import Tuner, TuningSession
from repro.tuners.greedy import greedy_enumerate
from repro.workload.candidates import candidates_for_query
from repro.workload.query import Query, Workload


class TwoPhaseGreedyTuner(Tuner):
    """Algorithm 2: per-query greedy, then workload-level greedy.

    Args:
        per_query_candidates: When true (default), phase 1 restricts each
            query to *its own* generated candidates (the paper's ``I_{q}``);
            when false, every query sees the full candidate set.
    """

    name = "two_phase_greedy"

    def __init__(self, per_query_candidates: bool = True):
        self._per_query_candidates = per_query_candidates

    def _phase_one_candidates(
        self,
        session: TuningSession,
        query: Query,
        candidates: list[Index],
    ) -> list[Index]:
        if not self._per_query_candidates:
            return candidates
        return candidates_for_query(session.workload.schema, query, candidates)

    def _enumerate(self, session: TuningSession) -> frozenset[Index]:
        workload = session.workload
        candidates = session.candidates
        constraints = session.constraints
        refined: list[Index] = []
        seen: set[Index] = set()

        # Phase 1: tune each query as a singleton workload.
        session.phase("per_query_greedy")
        for query in workload:
            query_candidates = self._phase_one_candidates(session, query, candidates)
            if not query_candidates:
                continue
            singleton = Workload(
                name=f"{workload.name}:{query.qid}",
                schema=workload.schema,
                queries=[query],
            )
            winner = greedy_enumerate(
                session, query_candidates, constraints, workload=singleton
            )
            for index in winner:
                if index not in seen:
                    seen.add(index)
                    refined.append(index)
            if session.exhausted:
                break

        if not refined:
            # Degenerate small-budget case: phase 1 produced nothing useful;
            # fall back to the full candidate set for phase 2.
            refined = list(candidates)

        # Phase 2: workload-level greedy over the refined candidates.
        session.phase("workload_greedy")
        return greedy_enumerate(session, refined, constraints, checkpoints=True)
