"""Extraction strategy tests (BCE and BG, Section 6.3)."""

import pytest

from repro.config import TuningConstraints
from repro.exceptions import BudgetExhaustedError
from repro.core.extraction import (
    BestExploredTracker,
    extract_bce,
    extract_best,
    extract_bg,
)
from repro.optimizer.whatif import WhatIfOptimizer


@pytest.fixture
def optimizer(toy_workload):
    return WhatIfOptimizer(toy_workload, budget=300)


@pytest.fixture
def constraints():
    return TuningConstraints(max_indexes=5)


class TestTracker:
    def test_initial_best_is_empty(self, optimizer, constraints):
        tracker = BestExploredTracker(optimizer, constraints)
        assert tracker.best == frozenset()
        assert tracker.best_cost == optimizer.empty_workload_cost()

    def test_observe_improvement(self, optimizer, constraints, toy_candidates):
        tracker = BestExploredTracker(optimizer, constraints)
        config = frozenset(toy_candidates[:2])
        cost = optimizer.empty_workload_cost() * 0.5
        assert tracker.observe(config, cost)
        assert tracker.best == config

    def test_observe_worse_ignored(self, optimizer, constraints, toy_candidates):
        tracker = BestExploredTracker(optimizer, constraints)
        config = frozenset(toy_candidates[:2])
        assert not tracker.observe(config, optimizer.empty_workload_cost() * 2)
        assert tracker.best == frozenset()

    def test_observe_rejects_inadmissible(self, optimizer, toy_candidates):
        tracker = BestExploredTracker(optimizer, TuningConstraints(max_indexes=1))
        config = frozenset(toy_candidates[:3])
        assert not tracker.observe(config, 0.0)

    def test_refresh_tightens_cost(self, optimizer, constraints, toy_workload, toy_candidates):
        tracker = BestExploredTracker(optimizer, constraints)
        config = frozenset(toy_candidates[:1])
        tracker.observe(config, optimizer.empty_workload_cost())  # not better; ignored
        tracker.observe(config, optimizer.empty_workload_cost() - 1)
        for query in toy_workload:
            optimizer.whatif_cost(query, config)
        tracker.refresh()
        assert tracker.best_cost <= optimizer.empty_workload_cost() - 1 or (
            tracker.best_cost == optimizer.derived_workload_cost(config)
        )


class TestExtraction:
    def seed_knowledge(self, optimizer, toy_candidates):
        """Evaluate all singletons so derived costs carry information."""
        for query in optimizer.workload:
            for index in toy_candidates[:10]:
                optimizer.whatif_cost(query, frozenset({index}))

    def test_bg_extracts_under_exhausted_budget(
        self, toy_workload, toy_candidates, constraints
    ):
        optimizer = WhatIfOptimizer(toy_workload, budget=60)
        self_knowledge_budget = optimizer.meter
        try:
            self.seed_knowledge(optimizer, toy_candidates)
        except BudgetExhaustedError:  # repro-lint: off[REP002]
            pass  # exhausting the budget is this test's setup, not a failure
        calls_before = optimizer.calls_used
        config = extract_bg(optimizer, toy_candidates, constraints)
        # BG may use leftover budget (FCFS); with the budget spent it is free.
        assert optimizer.calls_used >= calls_before
        assert len(config) <= constraints.max_indexes

    def test_bg_beats_empty_with_knowledge(
        self, toy_workload, toy_candidates, constraints
    ):
        optimizer = WhatIfOptimizer(toy_workload, budget=1000)
        self.seed_knowledge(optimizer, toy_candidates)
        config = extract_bg(optimizer, toy_candidates, constraints)
        assert optimizer.derived_workload_cost(config) < optimizer.empty_workload_cost()

    def test_dispatch_bce(self, optimizer, constraints, toy_candidates):
        tracker = BestExploredTracker(optimizer, constraints)
        config = frozenset(toy_candidates[:1])
        tracker.observe(config, 0.0)
        chosen = extract_best(
            "bce", optimizer, toy_candidates, constraints, tracker
        )
        assert chosen == config
        assert extract_bce(tracker) == config

    def test_hybrid_returns_better(self, toy_workload, toy_candidates, constraints):
        optimizer = WhatIfOptimizer(toy_workload, budget=1000)
        self.seed_knowledge(optimizer, toy_candidates)
        tracker = BestExploredTracker(optimizer, constraints)
        hybrid = extract_best(
            "bg", optimizer, toy_candidates, constraints, tracker, hybrid=True
        )
        bg_only = extract_bg(optimizer, toy_candidates, constraints)
        assert optimizer.derived_workload_cost(hybrid) <= optimizer.derived_workload_cost(
            bg_only
        )
