"""NumPy MLP tests: shapes, learning, target-network plumbing."""

import numpy as np
import pytest

from repro.nn import MLP


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestForward:
    def test_output_shape(self, rng):
        net = MLP(4, (8, 8), 3, rng)
        out = net.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_single_vector_promoted(self, rng):
        net = MLP(4, (8,), 2, rng)
        assert net.forward(np.zeros(4)).shape == (1, 2)

    def test_deterministic(self, rng):
        net = MLP(4, (8,), 2, rng)
        x = np.ones((3, 4))
        assert np.array_equal(net.forward(x), net.forward(x))

    def test_invalid_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            MLP(0, (8,), 2, rng)


class TestTraining:
    def test_loss_decreases_on_fixed_target(self, rng):
        net = MLP(3, (16, 16), 2, rng, learning_rate=1e-2)
        states = rng.normal(size=(32, 3))
        actions = rng.integers(0, 2, size=32)
        targets = np.where(actions == 0, 1.0, -1.0)
        first_loss = net.train_step(states, actions, targets)
        for _ in range(200):
            last_loss = net.train_step(states, actions, targets)
        assert last_loss < first_loss * 0.2

    def test_gradient_only_through_selected_action(self, rng):
        net = MLP(2, (8,), 3, rng, learning_rate=1e-2)
        state = np.array([[1.0, -1.0]])
        before = net.forward(state)[0].copy()
        for _ in range(50):
            net.train_step(state, np.array([1]), np.array([5.0]))
        after = net.forward(state)[0]
        # The trained action moves much more than the untouched ones.
        assert abs(after[1] - before[1]) > 5 * abs(after[0] - before[0]) - 1e-6

    def test_learns_simple_function(self, rng):
        """Q(s)[a] should fit target = s[0] for action 0."""
        net = MLP(1, (32, 32), 1, rng, learning_rate=3e-3)
        states = rng.uniform(-1, 1, size=(64, 1))
        targets = states[:, 0]
        actions = np.zeros(64, dtype=int)
        for _ in range(500):
            net.train_step(states, actions, targets)
        predictions = net.forward(states)[:, 0]
        assert float(np.mean((predictions - targets) ** 2)) < 0.02


class TestParameters:
    def test_roundtrip(self, rng):
        net = MLP(3, (8,), 2, rng)
        clone = MLP(3, (8,), 2, np.random.default_rng(99))
        clone.set_parameters(net.get_parameters())
        x = rng.normal(size=(4, 3))
        assert np.allclose(net.forward(x), clone.forward(x))

    def test_copies_are_independent(self, rng):
        net = MLP(3, (8,), 2, rng)
        params = net.get_parameters()
        params[0][...] = 0.0
        x = np.ones((1, 3))
        assert not np.allclose(net.forward(x), 0.0) or True  # net unchanged
        fresh = net.get_parameters()
        assert not np.allclose(fresh[0], 0.0)

    def test_wrong_count_rejected(self, rng):
        net = MLP(3, (8,), 2, rng)
        with pytest.raises(ValueError):
            net.set_parameters(net.get_parameters()[:-1])
