"""Golden serial-vs-parallel test: the determinism contract of repro.parallel.

A grid run with ``parallel=N`` must produce records bit-identical to
``parallel=1`` on every deterministic field — same per-seed RNG streams,
same aggregation — for any N. Only the wall-clock measurements
(``seconds``, ``cost_seconds``) may differ.
"""

from __future__ import annotations

import pytest

from repro.eval.runner import ExperimentRunner
from repro.tuners import DTATuner, MCTSTuner, VanillaGreedyTuner

#: RunRecord fields that must match exactly across executors. Everything
#: except ``seconds``/``cost_seconds`` (wall-clock) and ``results`` (not
#: retained under parallel execution).
DETERMINISTIC_FIELDS = (
    "workload",
    "tuner",
    "max_indexes",
    "budget",
    "improvement_mean",
    "improvement_std",
    "calls_used",
    "cache_hit_rate",
    "normalized_hits",
    "budget_policy",
    "event_counts",
    "stop_reasons",
    "seeds",
)

#: Wall-clock keys stripped from per-seed metrics before comparison.
_WALL_CLOCK_KEYS = {"seconds", "cost_seconds"}


def _roster():
    return {
        "vanilla_greedy": (lambda seed: VanillaGreedyTuner(), False),
        "dta": (lambda seed: DTATuner(), False),
        "mcts": (lambda seed: MCTSTuner(seed=seed), True),
    }


def _strip_wall_clock(metrics):
    return [
        {k: v for k, v in entry.items() if k not in _WALL_CLOCK_KEYS}
        for entry in metrics
    ]


def assert_records_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        for name in DETERMINISTIC_FIELDS:
            assert getattr(a, name) == getattr(b, name), (
                f"{a.tuner} K={a.max_indexes} B={a.budget}: "
                f"field {name!r} diverged"
            )
        assert _strip_wall_clock(a.seed_metrics) == _strip_wall_clock(
            b.seed_metrics
        ), f"{a.tuner} K={a.max_indexes} B={a.budget}: seed_metrics diverged"


def _run_grid(workload, candidates, jobs):
    runner = ExperimentRunner(
        workload,
        candidates=candidates,
        seeds=[7, 11],
        keep_results=False,
        parallel=jobs,
    )
    return runner.run_grid(_roster(), budgets=[20, 40], k_values=[3])


class TestToyGrid:
    @pytest.fixture(scope="class")
    def serial_records(self, toy_workload, toy_candidates):
        return _run_grid(toy_workload, toy_candidates, jobs=1)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_grid_bit_identical(
        self, toy_workload, toy_candidates, serial_records, jobs
    ):
        parallel_records = _run_grid(toy_workload, toy_candidates, jobs)
        assert_records_identical(serial_records, parallel_records)

    def test_cell_bit_identical(self, toy_workload, toy_candidates):
        def cell(jobs):
            runner = ExperimentRunner(
                toy_workload,
                candidates=toy_candidates,
                seeds=[7, 11, 13],
                keep_results=False,
                parallel=jobs,
            )
            from repro.config import TuningConstraints

            return runner.run_cell(
                lambda seed: MCTSTuner(seed=seed),
                budget=30,
                constraints=TuningConstraints(max_indexes=3),
            )

        assert_records_identical([cell(1)], [cell(2)])

    def test_budget_sweep_bit_identical(self, toy_workload, toy_candidates):
        from repro.config import TuningConstraints

        def sweep(jobs):
            runner = ExperimentRunner(
                toy_workload,
                candidates=toy_candidates,
                seeds=[7, 11],
                keep_results=False,
                parallel=jobs,
            )
            return runner.run_budget_sweep(
                lambda seed: MCTSTuner(seed=seed),
                budgets=[20, 40],
                constraints=TuningConstraints(max_indexes=3),
            )

        assert_records_identical(sweep(1), sweep(2))


@pytest.mark.slow
class TestTpchGrid:
    """The acceptance-criterion grid: TPC-H across greedy/DTA/MCTS."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_grid_bit_identical(self, tpch, jobs):
        from repro.workload.candidates import CandidateGenerator

        candidates = CandidateGenerator(tpch.schema).for_workload(tpch)
        serial = _run_grid(tpch, candidates, jobs=1)
        parallel = _run_grid(tpch, candidates, jobs=jobs)
        assert_records_identical(serial, parallel)
