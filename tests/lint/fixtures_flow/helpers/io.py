"""Payload factories (REP103 fixture support)."""


def persist(record):
    return record


def make_writer():
    return open("trace.log", "w")


def writer_by_another_name():
    return make_writer()


def default_writer():
    return persist
