"""Table metadata: cardinality, row width, page count."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.column import Column
from repro.exceptions import CatalogError, UnknownColumnError

#: Bytes per storage page; matches SQL Server's 8 KiB page.
PAGE_BYTES = 8192

#: Fixed per-row storage overhead (header, null bitmap, slot entry).
ROW_OVERHEAD_BYTES = 24


@dataclass
class Table:
    """A base table with columns and cardinality statistics.

    Attributes:
        name: Table name, unique within a :class:`~repro.catalog.Schema`.
        columns: Ordered column definitions.
        row_count: Estimated number of rows.
    """

    name: str
    columns: list[Column]
    row_count: int

    _by_name: dict[str, Column] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise CatalogError(f"invalid table name: {self.name!r}")
        if self.row_count < 0:
            raise CatalogError(f"row_count must be non-negative, got {self.row_count}")
        if not self.columns:
            raise CatalogError(f"table {self.name!r} must have at least one column")
        self._by_name = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self._by_name[column.name] = column

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Table) and other.name == self.name

    def column(self, name: str) -> Column:
        """Return the column called ``name``.

        Raises:
            UnknownColumnError: If the table has no such column.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        """Return whether the table defines a column called ``name``."""
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        """Names of all columns in definition order."""
        return [column.name for column in self.columns]

    @property
    def row_bytes(self) -> int:
        """Estimated stored width of one row, including overhead."""
        return ROW_OVERHEAD_BYTES + sum(column.width for column in self.columns)

    @property
    def pages(self) -> int:
        """Estimated number of heap pages occupied by the table."""
        rows_per_page = max(1, PAGE_BYTES // self.row_bytes)
        return max(1, -(-self.row_count // rows_per_page))  # ceil division

    @property
    def size_bytes(self) -> int:
        """Estimated total heap size in bytes."""
        return self.pages * PAGE_BYTES
