"""Wii-style dynamic budget reallocation (after *Wii: Dynamic Budget
Reallocation In Index Tuning*, see PAPERS.md).

The FCFS discipline lets whichever query is costed first monopolise the
budget — the failure mode the paper observes for DTA's priority queue. Wii's
remedy is to *slice* the budget per query and dynamically *reallocate* slack
that its owner is not using.

This implementation keeps the two mechanisms and adapts the signals to the
offline session model of this repository:

* **Slicing** — on :meth:`bind` the budget ``B`` is split evenly over the
  workload's queries (workload order breaks the remainder tie). A counted
  call for a query is granted from its own slice first.
* **Reallocation** — at every session checkpoint, queries that drew *no*
  counted call since the previous checkpoint release a ``release_rate``
  fraction of their unused slice into a shared pool; queries whose slice is
  spent may then borrow from the pool. Demand is thus observed per
  checkpoint interval rather than requiring per-query completion signals.

Invariants: every grant charges the global meter, so total consumption never
exceeds ``B``; slice transfers conserve ``sum(slices) + pool ≤ B``; with an
unlimited budget the policy degenerates to always-grant (like FCFS).
"""

from __future__ import annotations

import math

from repro.budget.meter import BudgetMeter
from repro.budget.policy import BudgetPolicy
from repro.exceptions import TuningError


class WiiReallocationPolicy(BudgetPolicy):
    """Per-query budget slices with checkpoint-driven slack reallocation.

    Args:
        meter: The global budget meter.
        release_rate: Fraction of an idle query's unused slice released to
            the shared pool at each checkpoint (``(0, 1]``; 1 releases all
            slack immediately, small values reallocate conservatively).
    """

    name = "wii"

    def __init__(self, meter: BudgetMeter, release_rate: float = 0.5):
        if not 0.0 < release_rate <= 1.0:
            raise TuningError(
                f"release_rate must lie in (0, 1], got {release_rate}"
            )
        super().__init__(meter)
        self._release_rate = release_rate
        self._slices: dict[str, int] = {}
        self._spent_by: dict[str, int] = {}
        self._pool = 0
        self._active: set[str] = set()
        self._sliced = False

    # ------------------------------------------------------------------ #
    # introspection (reports and tests)
    # ------------------------------------------------------------------ #

    @property
    def slices(self) -> dict[str, int]:
        """Current per-query slice sizes (a copy)."""
        return dict(self._slices)

    @property
    def spent_by_query(self) -> dict[str, int]:
        """Counted calls consumed per query (a copy)."""
        return dict(self._spent_by)

    @property
    def pool(self) -> int:
        """Reallocatable slack released by idle queries."""
        return self._pool

    # ------------------------------------------------------------------ #
    # policy protocol
    # ------------------------------------------------------------------ #

    def bind(self, workload) -> None:
        """Split the budget evenly over the workload's queries (once)."""
        if self._sliced:
            return
        qids = [query.qid for query in workload]
        budget = self.meter.budget
        if budget is None or not qids:
            return
        base, remainder = divmod(budget, len(qids))
        self._slices = {
            qid: base + (1 if position < remainder else 0)
            for position, qid in enumerate(qids)
        }
        self._sliced = True

    def admits(self, qid: str) -> bool:
        if self.meter.exhausted:
            return False
        if not self._sliced:
            # Unlimited budget or unbound session: no slicing to enforce.
            return True
        if self._spent_by.get(qid, 0) < self._slices.get(qid, 0):
            return True
        return self._pool > 0

    def _consume(self, qid: str) -> None:
        self.meter.charge()
        if not self._sliced:
            return
        self._active.add(qid)
        spent = self._spent_by.get(qid, 0)
        if spent >= self._slices.get(qid, 0):
            # Borrow: move one unit of pooled slack into this query's slice.
            self._pool -= 1
            self._slices[qid] = self._slices.get(qid, 0) + 1
        self._spent_by[qid] = spent + 1

    def on_checkpoint(self, calls_used: int, improvement: float | None) -> None:
        """Reallocate: idle queries release part of their unused slice."""
        if self._sliced:
            for qid, slice_size in self._slices.items():
                if qid in self._active:
                    continue
                unused = slice_size - self._spent_by.get(qid, 0)
                if unused <= 0:
                    continue
                released = math.ceil(unused * self._release_rate)
                self._slices[qid] = slice_size - released
                self._pool += released
            self._active.clear()
        super().on_checkpoint(calls_used, improvement)
