"""Vanilla greedy search (Algorithm 1) drawing budget through the session.

The classic AutoAdmin/DTA greedy enumeration: start from the empty
configuration, repeatedly add the single index that most reduces the
workload cost, and stop when no addition helps or the cardinality constraint
is reached. Budget-awareness follows Section 4.2.1 under the default FCFS
policy: what-if calls are issued first-come-first-serve until the budget
runs out, after which derived costs stand in — producing the row-major
layout of Figure 5(b). Other budget policies simply deny different calls;
the enumeration logic is unchanged.

One standard engineering refinement over the textbook pseudo-code: when a
trial index's table is not accessed by a query, the query's cost cannot
change, so the previous evaluation is reused instead of issuing a what-if
call — the same effect the what-if cache gives real tuners. The layout the
algorithm realises therefore only contains *informative* cells.
"""

from __future__ import annotations

from repro.catalog import Index, index_sort_key
from repro.config import TuningConstraints
from repro.backend.base import CostBackend
from repro.tuners.base import Tuner, TuningSession, as_session
from repro.workload.query import Workload


def greedy_enumerate(
    session: TuningSession | CostBackend,
    candidates: list[Index],
    constraints: TuningConstraints,
    workload: Workload | None = None,
    history: list[tuple[int, frozenset[Index]]] | None = None,
    *,
    checkpoints: bool = False,
) -> frozenset[Index]:
    """Algorithm 1 over ``workload`` (default: the session's workload).

    Args:
        session: The tuning session (a bare optimizer is wrapped for
            pre-session callers such as MCTS extraction).
        candidates: Candidate indexes ``I``.
        constraints: Cardinality/storage constraints ``Γ``.
        workload: Optional sub-workload (the two-phase variant tunes each
            query as a singleton workload through this hook).
        history: Optional sink for ``(calls_used, best_config)`` checkpoints
            (used by sub-searches that keep a local history).
        checkpoints: When true, record each round through
            :meth:`~repro.tuners.base.TuningSession.checkpoint` — the
            session history, event stream, and budget-policy hooks all see
            the round. Top-level tuners set this; embedded greedy phases
            (extraction, per-query sub-tuning) leave it off.

    Returns:
        The best configuration found, honouring ``constraints``.
    """
    session = as_session(session)
    optimizer = session.optimizer
    queries = list(workload or optimizer.workload)
    pool: list[Index] = sorted(candidates, key=index_sort_key)

    # Relevance map: only queries touching an index's table can change cost.
    tables_of = {
        query.qid: frozenset(
            access.table.name for access in optimizer.prepared(query).accesses.values()
        )
        for query in queries
    }
    relevant = {
        index: [q for q in queries if index.table in tables_of[q.qid]]
        for index in pool
    }

    best_config: frozenset[Index] = frozenset()
    current = {q.qid: optimizer.empty_cost(q) for q in queries}
    best_cost = sum(q.weight * current[q.qid] for q in queries)

    # Once the budget is spent the derivation store is frozen: a (query,
    # index) pair with no recorded observation can never change the trial
    # cost, so the post-budget sweep restricts itself to observed pairs.
    informative: dict[Index, list] | None = None

    while pool and len(best_config) < constraints.max_indexes:
        if session.exhausted and informative is None:
            derivation = optimizer.derivation
            informative = {
                index: [
                    q
                    for q in relevant[index]
                    if derivation.has_observation(q.qid, index)
                ]
                for index in pool
            }
        # Batch-price this step's counted calls up front, in the exact
        # (index, query) order the trial loop below would issue them.
        # Prefetch dedupes, reserves through the budget policy, and commits
        # in issue order, so the FCFS layout is byte-identical to the
        # sequential loop — the loop then reads everything from the cache.
        if not session.exhausted:
            optimizer.whatif_prefetch(
                (query, best_config | {index})
                for index in pool
                if (informative.get(index) if informative is not None else relevant[index])
                and constraints.admits(
                    best_config, extra_bytes=index.estimated_size_bytes
                )
                for query in (
                    informative[index] if informative is not None else relevant[index]
                )
            )
        step_config = best_config
        step_cost = best_cost
        for index in pool:
            affected = (
                informative.get(index, []) if informative is not None else relevant[index]
            )
            if not affected:
                continue
            if not constraints.admits(best_config, extra_bytes=index.estimated_size_bytes):
                continue
            trial = best_config | {index}
            trial_cost = best_cost
            for query in affected:
                trial_cost += query.weight * (
                    optimizer.trial_cost(query, current[query.qid], trial, index)
                    - current[query.qid]
                )
            if trial_cost < step_cost:
                step_config, step_cost = trial, trial_cost
        if step_cost >= best_cost:
            break
        (added,) = step_config - best_config
        best_config = step_config
        # Refresh per-query costs: only queries touching the added index's
        # table can have changed. Same batching: prefetch in loop order so
        # the FCFS truncation point matches the sequential evaluation.
        if not session.exhausted:
            optimizer.whatif_prefetch((query, best_config) for query in relevant[added])
        for query in relevant[added]:
            current[query.qid] = session.evaluated_cost(query, best_config)
        best_cost = sum(q.weight * current[q.qid] for q in queries)
        pool = [index for index in pool if index not in best_config]
        if checkpoints:
            session.checkpoint(best_config)
        if history is not None:
            history.append((optimizer.calls_used, best_config))
    return best_config


class VanillaGreedyTuner(Tuner):
    """Algorithm 1 at workload level with session-drawn budget."""

    name = "vanilla_greedy"

    def _enumerate(self, session: TuningSession) -> frozenset[Index]:
        return greedy_enumerate(
            session, session.candidates, session.constraints, checkpoints=True
        )
